package problems

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestLevenshteinKnownCases(t *testing.T) {
	cases := []struct {
		a, b string
		want int32
	}{
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
		{"a", "b", 1},
	}
	for _, c := range cases {
		p := Levenshtein(c.a, c.b)
		g, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := LevenshteinDistance(g, c.a, c.b); got != c.want {
			t.Errorf("lev(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := LevenshteinRef(c.a, c.b); got != c.want {
			t.Errorf("ref lev(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinPatternIsAntiDiagonal(t *testing.T) {
	p := Levenshtein("abc", "abd")
	if got := p.Pattern(); got != core.AntiDiagonal {
		t.Errorf("pattern = %s, want Anti-diagonal (§VI-A)", got)
	}
}

func TestLevenshteinFrameworkMatchesRef(t *testing.T) {
	a, b := workload.SimilarStrings(1, 300, workload.ASCIIAlphabet, 0.15)
	p := Levenshtein(a, b)
	res, err := core.SolveHetero(p, core.Options{TSwitch: -1, TShare: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := LevenshteinDistance(res.Grid, a, b), LevenshteinRef(a, b); got != want {
		t.Errorf("framework %d != ref %d", got, want)
	}
}

func TestLCSKnownCases(t *testing.T) {
	cases := []struct {
		a, b string
		want int32
	}{
		{"ABCBDAB", "BDCABA", 4}, // classic CLRS example
		{"", "x", 0},
		{"abc", "abc", 3},
		{"abc", "def", 0},
	}
	for _, c := range cases {
		g, err := core.Solve(LCS(c.a, c.b))
		if err != nil {
			t.Fatal(err)
		}
		if got := LCSLength(g, c.a, c.b); got != c.want {
			t.Errorf("lcs(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := LCSRef(c.a, c.b); got != c.want {
			t.Errorf("ref lcs(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCSFrameworkMatchesRef(t *testing.T) {
	a, b := workload.SimilarStrings(7, 257, workload.DNAAlphabet, 0.3)
	res, err := core.SolveHetero(LCS(a, b), core.Options{TSwitch: 10, TShare: 20})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := LCSLength(res.Grid, a, b), LCSRef(a, b); got != want {
		t.Errorf("framework %d != ref %d", got, want)
	}
}

func TestNeedlemanWunschKnown(t *testing.T) {
	s := DefaultAlignScores()
	// GATTACA vs GCATGCU with +2/-1/-2: verified against the reference.
	a, b := "GATTACA", "GCATGCU"
	g, err := core.Solve(NeedlemanWunsch(a, b, s))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := GlobalScore(g, a, b), NeedlemanWunschRef(a, b, s); got != want {
		t.Errorf("framework %d != ref %d", got, want)
	}
	// Aligning a string to itself scores Match per character.
	self, _ := core.Solve(NeedlemanWunsch("ACGT", "ACGT", s))
	if got := GlobalScore(self, "ACGT", "ACGT"); got != 8 {
		t.Errorf("self alignment = %d, want 8", got)
	}
	// Aligning against the empty string is all gaps.
	empty, _ := core.Solve(NeedlemanWunsch("ACG", "", s))
	if got := GlobalScore(empty, "ACG", ""); got != 3*s.Gap {
		t.Errorf("gap-only alignment = %d, want %d", got, 3*s.Gap)
	}
}

func TestNeedlemanWunschFrameworkMatchesRef(t *testing.T) {
	a, b := workload.SimilarStrings(21, 180, workload.DNAAlphabet, 0.2)
	s := DefaultAlignScores()
	res, err := core.SolveParallel(NeedlemanWunsch(a, b, s), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := GlobalScore(res, a, b), NeedlemanWunschRef(a, b, s); got != want {
		t.Errorf("framework %d != ref %d", got, want)
	}
}

func TestSmithWatermanProperties(t *testing.T) {
	s := DefaultAlignScores()
	a, b := workload.SimilarStrings(33, 150, workload.DNAAlphabet, 0.25)
	g, err := core.Solve(SmithWaterman(a, b, s))
	if err != nil {
		t.Fatal(err)
	}
	got := LocalBestScore(g)
	want := SmithWatermanRef(a, b, s)
	if got != want {
		t.Errorf("framework best %d != ref %d", got, want)
	}
	if got < 0 {
		t.Error("local score must be non-negative")
	}
	// A shared exact substring guarantees a minimum score.
	g2, _ := core.Solve(SmithWaterman("xxxxACGTACGTxxxx", "yyACGTACGTyy", s))
	if best := LocalBestScore(g2); best < 8*s.Match {
		t.Errorf("embedded match scored %d, want >= %d", best, 8*s.Match)
	}
}

func TestCheckerboardKnown(t *testing.T) {
	cost := [][]int32{
		{1, 9, 9},
		{9, 1, 9},
		{9, 9, 1},
	}
	p := Checkerboard(cost)
	if p.Pattern() != core.Horizontal {
		t.Errorf("pattern = %s, want Horizontal", p.Pattern())
	}
	if core.TransferNeed(p.Deps) != core.TransferTwoWay {
		t.Error("checkerboard should be horizontal case-2 (two-way)")
	}
	g, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := CheckerboardBest(g); got != 3 {
		t.Errorf("best path = %d, want 3 (the diagonal)", got)
	}
	_, refBest := CheckerboardRef(cost)
	if refBest != 3 {
		t.Errorf("ref best = %d, want 3", refBest)
	}
}

func TestCheckerboardFrameworkMatchesRef(t *testing.T) {
	cost := workload.CostGrid(5, 120, 90, 50)
	res, err := core.SolveHetero(Checkerboard(cost), core.Options{TShare: 30, TSwitch: 0})
	if err != nil {
		t.Fatal(err)
	}
	lastRow, refBest := CheckerboardRef(cost)
	if got := CheckerboardBest(res.Grid); got != refBest {
		t.Errorf("framework best %d != ref %d", got, refBest)
	}
	for j, want := range lastRow {
		if got := res.Grid.At(119, j); got != want {
			t.Fatalf("last row cell %d: %d != ref %d", j, got, want)
		}
	}
}

func TestSeamCarve(t *testing.T) {
	energy := workload.EnergyGrid(9, 60, 80)
	res, err := core.SolveParallel(SeamCarve(energy), 2)
	if err != nil {
		t.Fatal(err)
	}
	_, refBest := CheckerboardRef(energy)
	if got := SeamCost(res); got != refBest {
		t.Errorf("seam cost %d != ref %d", got, refBest)
	}
}

func TestDitherPatternIsKnightMove(t *testing.T) {
	img := workload.GrayImage(1, 4, 4)
	p := Dither(img)
	if got := p.Pattern(); got != core.KnightMove {
		t.Errorf("pattern = %s, want Knight-Move (§VI-B)", got)
	}
	if core.TransferNeed(p.Deps) != core.TransferTwoWay {
		t.Error("dithering should need two-way transfers")
	}
}

func TestDitherFrameworkMatchesScatterReference(t *testing.T) {
	img := workload.GrayImage(42, 37, 53)
	res, err := core.SolveHetero(Dither(img), core.Options{TSwitch: 8, TShare: 10})
	if err != nil {
		t.Fatal(err)
	}
	wantOut, wantErrs := DitherRef(img)
	got := DitherOutput(res.Grid)
	for i := range wantOut {
		for j := range wantOut[i] {
			if got[i][j] != wantOut[i][j] {
				t.Fatalf("output pixel (%d,%d) = %d, want %d", i, j, got[i][j], wantOut[i][j])
			}
			_, e := UnpackDither(res.Grid.At(i, j))
			if e != wantErrs[i][j] {
				t.Fatalf("error at (%d,%d) = %d, want %d", i, j, e, wantErrs[i][j])
			}
		}
	}
}

func TestDitherOutputIsBinary(t *testing.T) {
	img := workload.GrayImage(4, 16, 16)
	g, err := core.Solve(Dither(img))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range DitherOutput(g) {
		for _, v := range row {
			if v != 0 && v != 255 {
				t.Fatalf("non-binary output %d", v)
			}
		}
	}
}

func TestDitherPreservesAverageBrightness(t *testing.T) {
	// Error diffusion's defining property: local errors cancel, so the mean
	// output level tracks the mean input level.
	img := workload.GrayImage(8, 64, 64)
	g, err := core.Solve(Dither(img))
	if err != nil {
		t.Fatal(err)
	}
	var inSum, outSum int64
	out := DitherOutput(g)
	for i := range img {
		for j := range img[i] {
			inSum += int64(img[i][j])
			outSum += int64(out[i][j])
		}
	}
	n := int64(64 * 64)
	diff := inSum/n - outSum/n
	if diff < -8 || diff > 8 {
		t.Errorf("mean brightness drifted: in %d, out %d", inSum/n, outSum/n)
	}
}

func TestPackUnpackDither(t *testing.T) {
	for _, out := range []uint8{0, 255} {
		for _, e := range []int32{-510, -1, 0, 1, 255, 510} {
			o, ee := UnpackDither(PackDither(out, e))
			if o != out || ee != e {
				t.Errorf("pack/unpack(%d,%d) = (%d,%d)", out, e, o, ee)
			}
		}
	}
}

func TestDTWKnown(t *testing.T) {
	x := []float64{0, 1, 2}
	y := []float64{0, 1, 2}
	g, err := core.Solve(DTW(x, y))
	if err != nil {
		t.Fatal(err)
	}
	if got := DTWDistance(g, x, y); got != 0 {
		t.Errorf("identical series DTW = %v, want 0", got)
	}
	// A constant shift of a flat series costs shift per aligned point.
	x2 := []float64{1, 1, 1}
	y2 := []float64{2, 2, 2}
	g2, _ := core.Solve(DTW(x2, y2))
	if got := DTWDistance(g2, x2, y2); got != 3 {
		t.Errorf("shifted series DTW = %v, want 3", got)
	}
}

func TestDTWFrameworkMatchesRef(t *testing.T) {
	x := workload.TimeSeries(3, 120, -1, 1)
	y := workload.TimeSeries(4, 140, -1, 1)
	res, err := core.SolveHetero(DTW(x, y), core.Options{TSwitch: -1, TShare: -1})
	if err != nil {
		t.Fatal(err)
	}
	got := DTWDistance(res.Grid, x, y)
	want := DTWRef(x, y)
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("framework %v != ref %v", got, want)
	}
}

// All case studies must agree across every solver, not just the hetero one.
func TestAllProblemsAllSolversAgree(t *testing.T) {
	a, b := workload.SimilarStrings(99, 90, workload.DNAAlphabet, 0.2)
	cost := workload.CostGrid(17, 70, 60, 20)
	img := workload.GrayImage(23, 40, 50)

	probs := []*core.Problem[int32]{
		Levenshtein(a, b),
		LCS(a, b),
		NeedlemanWunsch(a, b, DefaultAlignScores()),
		SmithWaterman(a, b, DefaultAlignScores()),
		Checkerboard(cost),
		Dither(img),
	}
	for _, p := range probs {
		want, err := core.Solve(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		par, err := core.SolveParallel(p, 4)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		het, err := core.SolveHetero(p, core.Options{TSwitch: -1, TShare: -1})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for i := 0; i < p.Rows; i++ {
			for j := 0; j < p.Cols; j++ {
				if par.At(i, j) != want.At(i, j) {
					t.Fatalf("%s: parallel differs at (%d,%d)", p.Name, i, j)
				}
				if het.Grid.At(i, j) != want.At(i, j) {
					t.Fatalf("%s: hetero differs at (%d,%d)", p.Name, i, j)
				}
			}
		}
	}
}
