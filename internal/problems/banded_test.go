package problems

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestBandedLevenshteinExactWithinBand(t *testing.T) {
	a, b := workload.SimilarStrings(13, 400, workload.ASCIIAlphabet, 0.05)
	want := LevenshteinRef(a, b)
	d, _, err := BandedLevenshtein(a, b, int(want)+1)
	if err != nil {
		t.Fatal(err)
	}
	if d != want {
		t.Errorf("banded distance %d != full %d (band %d)", d, want, want+1)
	}
}

func TestBandedLevenshteinUpperBound(t *testing.T) {
	a, b := workload.SimilarStrings(17, 200, workload.ASCIIAlphabet, 0.4)
	want := LevenshteinRef(a, b)
	for _, band := range []int{1, 4, 16, 64} {
		d, _, err := BandedLevenshtein(a, b, band)
		if err != nil {
			t.Fatal(err)
		}
		if d < want {
			t.Errorf("band %d: banded %d below true distance %d", band, d, want)
		}
	}
}

func TestLevenshteinAdaptive(t *testing.T) {
	cases := []struct{ a, b string }{
		{"kitten", "sitting"},
		{"", ""},
		{"", "abcdef"},
		{"abcdef", ""},
		{"same", "same"},
	}
	for _, c := range cases {
		got, err := LevenshteinAdaptive(c.a, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if want := LevenshteinRef(c.a, c.b); got != want {
			t.Errorf("adaptive(%q,%q) = %d, want %d", c.a, c.b, got, want)
		}
	}
}

// Property: the adaptive banded distance always equals the full distance.
func TestLevenshteinAdaptiveProperty(t *testing.T) {
	f := func(seedA, seedB uint64, rate uint8) bool {
		n := int(seedA%60) + 1
		a := workload.RandomString(seedA, n, workload.DNAAlphabet)
		var b string
		if rate%2 == 0 {
			_, b = workload.SimilarStrings(seedB, n, workload.DNAAlphabet, float64(rate%100)/100)
		} else {
			b = workload.RandomString(seedB, int(seedB%60)+1, workload.DNAAlphabet)
		}
		got, err := LevenshteinAdaptive(a, b)
		if err != nil {
			return false
		}
		return got == LevenshteinRef(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDTWBandedWideBandIsExact(t *testing.T) {
	x := workload.TimeSeries(3, 80, -1, 1)
	y := workload.TimeSeries(4, 80, -1, 1)
	want := DTWRef(x, y)
	got, err := DTWBanded(x, y, 81)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("wide-band DTW %v != full %v", got, want)
	}
}

func TestDTWBandedUpperBound(t *testing.T) {
	x := workload.TimeSeries(7, 120, -1, 1)
	y := workload.TimeSeries(8, 120, -1, 1)
	want := DTWRef(x, y)
	prev := math.Inf(1)
	for _, band := range []int{2, 5, 15, 40} {
		got, err := DTWBanded(x, y, band)
		if err != nil {
			t.Fatal(err)
		}
		if got < want-1e-9 {
			t.Errorf("band %d: banded %v below full %v", band, got, want)
		}
		if got > prev+1e-9 {
			t.Errorf("band %d: banded DTW not monotone (%v after %v)", band, got, prev)
		}
		prev = got
	}
}
