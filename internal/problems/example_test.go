package problems_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/problems"
)

// The paper's §VI-A case study, end to end: build, solve, extract.
func ExampleLevenshtein() {
	a, b := "kitten", "sitting"
	p := problems.Levenshtein(a, b)
	g, err := core.Solve(p)
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Pattern())
	fmt.Println(problems.LevenshteinDistance(g, a, b))
	// Output:
	// Anti-diagonal
	// 3
}

// Traceback recovers an actual edit script, not just the distance.
func ExampleLevenshteinScript() {
	a, b := "flaw", "lawn"
	g, _ := core.Solve(problems.Levenshtein(a, b))
	ops := problems.LevenshteinScript(g, a, b)
	fmt.Println(problems.ScriptCost(ops))
	fmt.Println(problems.ApplyScript(a, b, ops))
	// Output:
	// 2
	// lawn
}

// Hirschberg's algorithm recovers an LCS string in linear space. (Several
// optimal subsequences exist for this classic pair; this implementation
// deterministically returns "BDAB".)
func ExampleHirschbergLCS() {
	fmt.Println(problems.HirschbergLCS("ABCBDAB", "BDCABA"))
	// Output:
	// BDAB
}

// The checkerboard problem of §VI-C through the heterogeneous framework.
func ExampleCheckerboard() {
	cost := [][]int32{
		{1, 9, 9},
		{9, 1, 9},
		{9, 9, 1},
	}
	res, err := core.SolveHetero(problems.Checkerboard(cost), core.Options{TSwitch: -1, TShare: -1})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Transfer)
	fmt.Println(problems.CheckerboardBest(res.Grid))
	// Output:
	// 2 way
	// 3
}

// The adaptive banded solver computes exact distances in O(n*d).
func ExampleLevenshteinAdaptive() {
	d, err := problems.LevenshteinAdaptive("intention", "execution")
	if err != nil {
		panic(err)
	}
	fmt.Println(d)
	// Output:
	// 5
}
