package problems

import (
	"repro/internal/core"
)

// Floyd-Steinberg error-diffusion dithering, the paper's §VI-B case study
// and the canonical knight-move problem (Figure 11).
//
// The scatter formulation pushes each pixel's quantization error to its
// E, SW, S, SE neighbours scaled by 7/16, 3/16, 5/16, 1/16. The equivalent
// gather formulation reads the already-computed errors of W, NE, N, NW —
// the full representative set — so Time(i,j) must exceed the times of all
// four, exactly the scheduling constraint of the paper:
//
//	acc(i,j) = 7/16 err(i,j-1) + 3/16 err(i-1,j+1)
//	         + 5/16 err(i-1,j) + 1/16 err(i-1,j-1)
//	old      = img(i,j) + acc(i,j)
//	out      = 255 if old >= 128 else 0
//	err      = old - out
//
// Each cell packs (out, err) into one int32 so the recurrence stays a pure
// gather over cell values. Integer divisions truncate toward zero in both
// the framework and reference implementations, making them bit-identical.

// ditherErrBias recenters the error (range about [-510, 510]) into a
// non-negative field for packing.
const ditherErrBias = 1024

// PackDither packs an output level (0 or 255) and a signed error into one
// cell value.
func PackDither(out uint8, err int32) int32 {
	return int32(out)<<16 | (err + ditherErrBias)
}

// UnpackDither splits a packed cell value.
func UnpackDither(cell int32) (out uint8, err int32) {
	return uint8(cell >> 16), (cell & 0xffff) - ditherErrBias
}

// Dither builds the gather-form Floyd-Steinberg problem over a grayscale
// image. Contributing set {W, NW, N, NE}: knight-move.
func Dither(img [][]uint8) *core.Problem[int32] {
	rows, cols := len(img), len(img[0])
	return &core.Problem[int32]{
		Name: "floyd-steinberg",
		Rows: rows,
		Cols: cols,
		Deps: core.DepW | core.DepNW | core.DepN | core.DepNE,
		F: func(i, j int, nb core.Neighbors[int32]) int32 {
			_, errW := UnpackDither(nb.W)
			_, errNW := UnpackDither(nb.NW)
			_, errN := UnpackDither(nb.N)
			_, errNE := UnpackDither(nb.NE)
			acc := errW*7/16 + errNE*3/16 + errN*5/16 + errNW*1/16
			old := int32(img[i][j]) + acc
			var out uint8
			if old >= 128 {
				out = 255
			}
			return PackDither(out, old-int32(out))
		},
		// Out-of-image neighbours contribute zero error.
		Boundary:     func(i, j int) int32 { return PackDither(0, 0) },
		BytesPerCell: 4,
		InputBytes:   rows * cols, // the 8-bit source image
	}
}

// DitherOutput extracts the dithered 1-bit-per-pixel image (stored as
// 0/255 bytes) from a solved table.
func DitherOutput(g interface {
	At(i, j int) int32
	Rows() int
	Cols() int
}) [][]uint8 {
	out := make([][]uint8, g.Rows())
	for i := range out {
		out[i] = make([]uint8, g.Cols())
		for j := range out[i] {
			v, _ := UnpackDither(g.At(i, j))
			out[i][j] = v
		}
	}
	return out
}

// DitherRef runs the classic scatter-form Floyd-Steinberg loop, written
// independently of the framework: errors propagate E, SW, S, SE with the
// same truncating integer scalings. It returns the output image and the
// per-pixel errors for exact comparison.
func DitherRef(img [][]uint8) (out [][]uint8, errs [][]int32) {
	rows, cols := len(img), len(img[0])
	acc := make([][]int32, rows)
	out = make([][]uint8, rows)
	errs = make([][]int32, rows)
	for i := range acc {
		acc[i] = make([]int32, cols)
		out[i] = make([]uint8, cols)
		errs[i] = make([]int32, cols)
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			old := int32(img[i][j]) + acc[i][j]
			var o uint8
			if old >= 128 {
				o = 255
			}
			e := old - int32(o)
			out[i][j] = o
			errs[i][j] = e
			if j+1 < cols {
				acc[i][j+1] += e * 7 / 16
			}
			if i+1 < rows {
				if j > 0 {
					acc[i+1][j-1] += e * 3 / 16
				}
				acc[i+1][j] += e * 5 / 16
				if j+1 < cols {
					acc[i+1][j+1] += e * 1 / 16
				}
			}
		}
	}
	return out, errs
}
