package problems

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestLCS3Known(t *testing.T) {
	cases := []struct {
		a, b, c string
		want    int32
	}{
		{"abcd", "abcd", "abcd", 4},
		{"abc", "def", "ghi", 0},
		{"", "abc", "abc", 0},
		{"axbyc", "aybzc", "azbxc", 3}, // common "abc"
		{"AGGT12", "12TXAYB", "12XBA", 2},
	}
	for _, cse := range cases {
		g, err := core.Solve3(LCS3(cse.a, cse.b, cse.c))
		if err != nil {
			t.Fatal(err)
		}
		if got := LCS3Length(g, cse.a, cse.b, cse.c); got != cse.want {
			t.Errorf("LCS3(%q,%q,%q) = %d, want %d", cse.a, cse.b, cse.c, got, cse.want)
		}
		if got := LCS3Ref(cse.a, cse.b, cse.c); got != cse.want {
			t.Errorf("ref LCS3(%q,%q,%q) = %d, want %d", cse.a, cse.b, cse.c, got, cse.want)
		}
	}
}

func TestLCS3AllSolversAgree(t *testing.T) {
	a, _ := workload.SimilarStrings(1, 24, workload.DNAAlphabet, 0.3)
	_, b := workload.SimilarStrings(2, 22, workload.DNAAlphabet, 0.3)
	c := workload.RandomString(3, 20, workload.DNAAlphabet)
	p := LCS3(a, b, c)
	want, err := core.Solve3(p)
	if err != nil {
		t.Fatal(err)
	}
	ref := LCS3Ref(a, b, c)
	if got := LCS3Length(want, a, b, c); got != ref {
		t.Fatalf("sequential %d != ref %d", got, ref)
	}
	par, err := core.SolveParallel3(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	het, err := core.SolveHetero3(p, core.Options{TSwitch: -1, TShare: -1})
	if err != nil {
		t.Fatal(err)
	}
	if LCS3Length(par, a, b, c) != ref || LCS3Length(het.Grid, a, b, c) != ref {
		t.Error("parallel or hetero 3-D solve differs from reference")
	}
}

// Property: three-way LCS is bounded by every pairwise LCS and achieves
// the full length on identical strings.
func TestLCS3BoundsProperty(t *testing.T) {
	f := func(sa, sb, sc uint64) bool {
		a := workload.RandomString(sa, int(sa%12)+1, "AB")
		b := workload.RandomString(sb, int(sb%12)+1, "AB")
		c := workload.RandomString(sc, int(sc%12)+1, "AB")
		l3 := LCS3Ref(a, b, c)
		if l3 < 0 {
			return false
		}
		if l3 > LCSRef(a, b) || l3 > LCSRef(b, c) || l3 > LCSRef(a, c) {
			return false
		}
		return LCS3Ref(a, a, a) == int32(len(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
