package hetsim

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Platform bundles the device models of one heterogeneous node.
type Platform struct {
	Name string
	CPU  CPUModel
	GPU  GPUModel
	Bus  PCIeModel
	// CopyEngines is the number of DMA engines (1 or 2). Tesla-class parts
	// have two, allowing simultaneous H2D and D2H; consumer parts have one.
	CopyEngines int
}

// Validate reports whether the platform's parameters are self-consistent.
func (p *Platform) Validate() error {
	var errs []error
	if p.Name == "" {
		errs = append(errs, errors.New("hetsim: platform name is empty"))
	}
	if p.CPU.Threads < 1 {
		errs = append(errs, fmt.Errorf("hetsim: CPU threads %d < 1", p.CPU.Threads))
	}
	if p.CPU.CellCost <= 0 {
		errs = append(errs, errors.New("hetsim: CPU cell cost must be positive"))
	}
	if p.GPU.SMX < 1 || p.GPU.CoresPerSMX < 1 {
		errs = append(errs, fmt.Errorf("hetsim: GPU geometry %dx%d invalid", p.GPU.SMX, p.GPU.CoresPerSMX))
	}
	if p.GPU.WaveCost <= 0 {
		errs = append(errs, errors.New("hetsim: GPU wave cost must be positive"))
	}
	if p.GPU.UncoalescedPenalty < 1 {
		errs = append(errs, fmt.Errorf("hetsim: uncoalesced penalty %.2f < 1", p.GPU.UncoalescedPenalty))
	}
	if p.Bus.BandwidthPinned <= 0 || p.Bus.BandwidthPageable <= 0 {
		errs = append(errs, errors.New("hetsim: bus bandwidth must be positive"))
	}
	if p.CopyEngines != 1 && p.CopyEngines != 2 {
		errs = append(errs, fmt.Errorf("hetsim: copy engines %d not in {1,2}", p.CopyEngines))
	}
	return errors.Join(errs...)
}

// HeteroHigh returns the server-class platform of the paper: an Intel
// i7-980 (6 cores / 12 threads @ 3.33 GHz) paired with an Nvidia Tesla K20
// (13 SMX x 192 cores = 2496 cores, Kepler).
//
// Calibration: the CPU sustains ~0.6 Gcells/s across 12 threads on branchy
// integer DP recurrences; the K20 sustains ~8.3 Gcells/s on coalesced
// memory-bound kernels, with a ~3.5 us launch latency typical of CUDA 5.0
// on that era's driver stack; pinned-memory micro-transfers land in the
// sub-microsecond range while pageable transfers pay a staging copy.
func HeteroHigh() *Platform {
	return &Platform{
		Name: "Hetero-High",
		CPU: CPUModel{
			Cores:            6,
			Threads:          12,
			ClockGHz:         3.33,
			CellCost:         20,   // ns; ~0.6 Gcells/s across 12 threads
			DispatchOverhead: 2000, // ns per parallel region
			SpawnCost:        350,  // ns per task in thread-per-cell mode
			StridePenalty:    1.6,
		},
		GPU: GPUModel{
			SMX:                13,
			CoresPerSMX:        192,
			WarpSize:           32,
			LaunchLatency:      3500, // ns
			WaveCost:           300,  // ns; ~8.3 Gcells/s coalesced
			UncoalescedPenalty: 4.0,
		},
		Bus: PCIeModel{
			LatencyPageable:   2500, // ns
			LatencyPinned:     400,  // ns
			BandwidthPageable: 5.0e9,
			BandwidthPinned:   6.0e9,
		},
		CopyEngines: 2,
	}
}

// HeteroLow returns the commodity platform of the paper: an Intel i7-3632QM
// (4 cores / 8 threads @ 2.2 GHz) paired with an Nvidia GeForce GT 650M
// (2 SMX x 192 cores = 384 cores, Kepler).
func HeteroLow() *Platform {
	return &Platform{
		Name: "Hetero-Low",
		CPU: CPUModel{
			Cores:            4,
			Threads:          8,
			ClockGHz:         2.2,
			CellCost:         25,   // ns; ~0.32 Gcells/s across 8 threads
			DispatchOverhead: 2500, // ns
			SpawnCost:        500,  // ns
			StridePenalty:    1.6,
		},
		GPU: GPUModel{
			SMX:                2,
			CoresPerSMX:        192,
			WarpSize:           32,
			LaunchLatency:      6000, // ns
			WaveCost:           300,  // ns; ~1.28 Gcells/s coalesced
			UncoalescedPenalty: 4.0,
		},
		Bus: PCIeModel{
			LatencyPageable:   4000, // ns
			LatencyPinned:     800,  // ns
			BandwidthPageable: 2.5e9,
			BandwidthPinned:   3.0e9,
		},
		CopyEngines: 1,
	}
}

// Platforms returns the two calibrated presets in paper order.
func Platforms() []*Platform {
	return []*Platform{HeteroHigh(), HeteroLow()}
}

// PlatformByName returns the preset with the given name, or an error. Name
// matching is exact ("Hetero-High", "Hetero-Low", "Hetero-Phi").
func PlatformByName(name string) (*Platform, error) {
	for _, p := range append(Platforms(), HeteroPhi(), HeteroModern()) {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("hetsim: unknown platform %q (want Hetero-High, Hetero-Low, Hetero-Phi or Hetero-Modern)", name)
}

// HeteroPhi returns the future-work platform of the paper's conclusion
// ("It would be interesting to see how does a heterogeneous approach
// impact the implementation if the system has some other accelerators
// like Intel Xeon-Phi"): the Hetero-High host CPU paired with a Xeon Phi
// 5110P instead of the K20.
//
// The Phi is modeled through the same accelerator cost model: 60 cores x 4
// hardware threads = 240 execution contexts ("lanes"), a per-wave cost
// reflecting its 1.05 GHz in-order cores on branchy integer DP (~1.6
// Gcells/s sustained — well below the K20 but above the host CPU), a
// noticeably higher offload-region start cost than a CUDA kernel launch,
// and a milder uncoalesced penalty because the Phi's coherent caches
// tolerate strided access better than a GPU's memory coalescer.
func HeteroPhi() *Platform {
	p := HeteroHigh()
	p.Name = "Hetero-Phi"
	p.GPU = GPUModel{
		SMX:                60,    // cores
		CoresPerSMX:        4,     // hardware threads per core
		WarpSize:           16,    // 512-bit SIMD over int32
		LaunchLatency:      15000, // ns; offload-region start
		WaveCost:           150,   // ns; ~1.6 Gcells/s sustained
		UncoalescedPenalty: 2.0,
	}
	return p
}

// PowerModel holds the coarse per-device power draws used for energy
// accounting: a device draws Active watts while an op occupies it, and the
// whole node draws Base watts for the duration of the run (idle silicon,
// memory, board). DMA transfers are folded into Base.
type PowerModel struct {
	CPUActiveW float64
	GPUActiveW float64
	BaseW      float64
}

// Power returns the platform's calibrated power model. TDP-class figures
// of the paper's era: the i7-980 is a 130 W part, the Tesla K20 225 W, the
// GT 650M 45 W, the i7-3632QM 35 W.
func (p *Platform) Power() PowerModel {
	switch p.Name {
	case "Hetero-Low":
		return PowerModel{CPUActiveW: 35, GPUActiveW: 45, BaseW: 25}
	case "Hetero-Phi":
		return PowerModel{CPUActiveW: 130, GPUActiveW: 225, BaseW: 80}
	default: // Hetero-High
		return PowerModel{CPUActiveW: 130, GPUActiveW: 225, BaseW: 80}
	}
}

// Energy returns the modeled energy of a timeline on this platform, in
// joules: busy time per device at its active draw plus the makespan at the
// node's base draw. Extra accelerator streams are charged at the GPU rate.
func (p *Platform) Energy(t Timeline) float64 {
	pm := p.Power()
	joules := t.Makespan().Seconds() * pm.BaseW
	joules += t.BusyTime(ResCPU).Seconds() * pm.CPUActiveW
	joules += t.BusyTime(ResGPU).Seconds() * pm.GPUActiveW
	for s := 0; s < t.NumStreams; s++ {
		joules += t.BusyTime(numFixedResources+Resource(s)).Seconds() * pm.GPUActiveW
	}
	return joules
}

// HeteroModern is a what-if preset a decade past the paper: a 64-core
// server CPU paired with an A100-class accelerator. Against Hetero-High
// the accelerator grows ~17x in throughput while its launch latency halves
// — so per-iteration overheads shrink relative to compute far slower than
// throughput grows, which is exactly the regime where the paper's
// low-work-region argument keeps paying. Used by the ext-modern
// experiment.
func HeteroModern() *Platform {
	return &Platform{
		Name: "Hetero-Modern",
		CPU: CPUModel{
			Cores:            64,
			Threads:          128,
			ClockGHz:         2.45,
			CellCost:         10,   // ns; ~12.8 Gcells/s across 128 threads
			DispatchOverhead: 1200, // ns
			SpawnCost:        200,  // ns
			StridePenalty:    1.5,
		},
		GPU: GPUModel{
			SMX:                108, // A100 SMs
			CoresPerSMX:        64,
			WarpSize:           32,
			LaunchLatency:      2000, // ns
			WaveCost:           50,   // ns; ~138 Gcells/s coalesced
			UncoalescedPenalty: 3.0,
		},
		Bus: PCIeModel{
			LatencyPageable:   1500, // ns
			LatencyPinned:     250,  // ns
			BandwidthPageable: 20e9,
			BandwidthPinned:   25e9,
		},
		CopyEngines: 2,
	}
}

// MarshalJSON / config loading: platforms round-trip through JSON so
// experiments can run against user-supplied calibrations
// (lddprun -platform-file).

// LoadPlatform reads a platform description from JSON.
func LoadPlatform(data []byte) (*Platform, error) {
	var p Platform
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("hetsim: parsing platform: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// DumpPlatform renders a platform as indented JSON.
func DumpPlatform(p *Platform) ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}
