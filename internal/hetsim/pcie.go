package hetsim

import "time"

// PCIeModel describes the host<->device interconnect.
//
// A transfer of n bytes costs latency + n/bandwidth. Pinned (page-locked)
// host memory has both lower latency and higher effective bandwidth than
// pageable memory, because the DMA engine can access it directly without a
// staging copy; the framework exploits this for the small per-iteration
// boundary exchanges that two-way patterns require (paper §IV-C case 2).
type PCIeModel struct {
	// LatencyPageable is the fixed cost of a transfer from pageable memory.
	LatencyPageable time.Duration
	// LatencyPinned is the fixed cost of a transfer from pinned memory.
	LatencyPinned time.Duration
	// BandwidthPageable is sustained pageable bandwidth in bytes/second.
	BandwidthPageable float64
	// BandwidthPinned is sustained pinned bandwidth in bytes/second.
	BandwidthPinned float64
}

// TransferDuration returns the simulated duration of moving bytes across
// the bus in either direction.
func (p PCIeModel) TransferDuration(bytes int, pinned bool) time.Duration {
	if bytes <= 0 {
		return 0
	}
	lat, bw := p.LatencyPageable, p.BandwidthPageable
	if pinned {
		lat, bw = p.LatencyPinned, p.BandwidthPinned
	}
	var body time.Duration
	if bw > 0 {
		body = time.Duration(float64(bytes) / bw * float64(time.Second))
	}
	return lat + body
}
