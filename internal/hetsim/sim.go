package hetsim

import (
	"fmt"
	"time"
)

// Sim resolves start and end times for a DAG of operations over a set of
// in-order resources.
//
// Scheduling rule: an operation starts at
//
//	max(ready time of its resource, max end time of its dependencies)
//
// and occupies its resource until start+Duration. This is the standard
// list-scheduling semantics of in-order hardware queues (OpenMP parallel
// regions, CUDA streams, DMA engines) and is sufficient to express
// fork/join, kernel serialization, and copy/compute overlap.
//
// A Sim is single-goroutine; the framework drives one Sim per solve.
type Sim struct {
	platform *Platform
	ops      []record
	// resourceReady[r] is the time at which resource r becomes free.
	resourceReady []time.Duration
	// opEnd[id] caches the end time of each submitted op.
	opEnd       []time.Duration
	numStreams  int
	streamNames []string
	// lastOp[r] is the most recent operation submitted to resource r.
	lastOp []OpID
}

type record struct {
	op    Op
	start time.Duration
	end   time.Duration
	// front is the wavefront index for per-front operations (SubmitFront),
	// or NoFront for plain submissions. It is carried separately from the
	// label so the hot submission path never formats strings; the full
	// "label:t=front" form is materialized lazily by OpRecord.FullLabel
	// when a trace sink actually renders the timeline.
	front int
	// critParent is the operation whose completion set this op's start
	// time: the latest-ending dependency, or the same-resource predecessor
	// when queue order dominates. NoOp when the op started at time zero.
	critParent OpID
}

// NewSim creates a simulator for the given platform. The platform is only
// consulted for its copy-engine count here; durations are computed by the
// caller (typically via the platform's device models) before submission.
func NewSim(p *Platform) *Sim {
	s := &Sim{
		platform:      p,
		resourceReady: make([]time.Duration, numFixedResources),
		lastOp:        make([]OpID, numFixedResources),
	}
	for i := range s.lastOp {
		s.lastOp[i] = NoOp
	}
	return s
}

// Platform returns the platform this simulator was created for.
func (s *Sim) Platform() *Platform { return s.platform }

// NewStream allocates an additional in-order queue (an extra CUDA stream).
// Operations on distinct streams only order through explicit dependencies.
func (s *Sim) NewStream() Resource {
	return s.NewNamedStream("")
}

// NewNamedStream allocates an additional in-order queue carrying a display
// name, used for extra accelerators in multi-device configurations. The
// name surfaces through Timeline.NameOf.
func (s *Sim) NewNamedStream(name string) Resource {
	r := numFixedResources + Resource(s.numStreams)
	s.numStreams++
	s.resourceReady = append(s.resourceReady, 0)
	s.streamNames = append(s.streamNames, name)
	s.lastOp = append(s.lastOp, NoOp)
	return r
}

// effectiveResource folds the D2H engine onto the H2D engine on platforms
// with a single DMA copy engine, serializing transfers in both directions.
func (s *Sim) effectiveResource(r Resource) Resource {
	if r == ResCopyD2H && s.platform != nil && s.platform.CopyEngines < 2 {
		return ResCopyH2D
	}
	return r
}

// Submit schedules op after the given dependencies and returns its ID.
// NoOp entries in deps are ignored. Submit panics on negative durations,
// unknown resources, or forward references, all of which are programming
// errors in the strategy code.
func (s *Sim) Submit(op Op, deps ...OpID) OpID {
	return s.SubmitFront(op, NoFront, deps...)
}

// SubmitFront is Submit for a per-wavefront operation: front tags the op
// with its wavefront index without formatting it into the label. The tag
// surfaces as OpRecord.Front and is appended to the display label only when
// a trace sink materializes it (OpRecord.FullLabel), which keeps the
// per-iteration submission path free of string formatting — frameworks
// submit two to three ops per front, so a fmt.Sprintf here dominates the
// allocation profile of every simulated sweep.
func (s *Sim) SubmitFront(op Op, front int, deps ...OpID) OpID {
	if op.Duration < 0 {
		panic(fmt.Sprintf("hetsim: negative duration %v for op %q", op.Duration, op.Label))
	}
	res := s.effectiveResource(op.Resource)
	if res < 0 || int(res) >= len(s.resourceReady) {
		panic(fmt.Sprintf("hetsim: unknown resource %d for op %q", int(op.Resource), op.Label))
	}
	if front < 0 {
		front = NoFront
	}
	id := OpID(len(s.ops))
	start := s.resourceReady[res]
	parent := s.lastOnResource(res)
	for _, d := range deps {
		if d == NoOp {
			continue
		}
		if d < 0 || d >= id {
			panic(fmt.Sprintf("hetsim: op %q depends on invalid op %d", op.Label, int(d)))
		}
		if e := s.opEnd[d]; e > start {
			start = e
			parent = d
		}
	}
	if parent != NoOp && s.opEnd[parent] < start {
		// The resource was free before the constraining dependency ended;
		// keep the dependency as the parent only if it actually set start.
		parent = NoOp
		for _, d := range deps {
			if d != NoOp && s.opEnd[d] == start {
				parent = d
				break
			}
		}
		if parent == NoOp {
			if p := s.lastOnResource(res); p != NoOp && s.opEnd[p] == start {
				parent = p
			}
		}
	}
	end := start + op.Duration
	s.resourceReady[res] = end
	s.lastOp[res] = id
	op.Resource = res
	s.ops = append(s.ops, record{op: op, start: start, end: end, front: front, critParent: parent})
	s.opEnd = append(s.opEnd, end)
	return id
}

// EndOf returns the end time of a previously submitted operation.
// EndOf(NoOp) returns 0.
func (s *Sim) EndOf(id OpID) time.Duration {
	if id == NoOp {
		return 0
	}
	return s.opEnd[id]
}

// Makespan returns the completion time of the last-finishing operation, that
// is, the simulated wall-clock duration of the whole computation.
func (s *Sim) Makespan() time.Duration {
	var m time.Duration
	for _, e := range s.opEnd {
		if e > m {
			m = e
		}
	}
	return m
}

// NumOps returns the number of operations submitted so far.
func (s *Sim) NumOps() int { return len(s.ops) }

// Timeline snapshots the schedule resolved so far. The returned Timeline is
// independent of the Sim and safe to retain.
func (s *Sim) Timeline() Timeline {
	recs := make([]OpRecord, len(s.ops))
	for i, r := range s.ops {
		recs[i] = OpRecord{
			ID:       OpID(i),
			Label:    r.op.Label,
			Front:    r.front,
			Resource: r.op.Resource,
			Kind:     r.op.Kind,
			Start:    r.start,
			End:      r.end,
			Cells:    r.op.Cells,
			Bytes:    r.op.Bytes,
		}
	}
	names := make([]string, len(s.streamNames))
	copy(names, s.streamNames)
	return Timeline{Records: recs, NumStreams: s.numStreams, StreamNames: names}
}

// lastOnResource returns the most recent op on a resource, or NoOp.
func (s *Sim) lastOnResource(r Resource) OpID {
	if int(r) >= len(s.lastOp) {
		return NoOp
	}
	return s.lastOp[r]
}

// CriticalPath returns the chain of operations whose waits compose the
// makespan, from the first op to the last-finishing one. Each op on the
// path started exactly when its predecessor ended (through a dependency
// edge or in-order queueing); gaps appear only before the first op.
func (s *Sim) CriticalPath() []OpRecord {
	if len(s.ops) == 0 {
		return nil
	}
	// Find the last-finishing op.
	last := OpID(0)
	for id := range s.ops {
		if s.opEnd[id] > s.opEnd[last] {
			last = OpID(id)
		}
	}
	var path []OpRecord
	for id := last; id != NoOp; {
		r := s.ops[id]
		path = append(path, OpRecord{
			ID: id, Label: r.op.Label, Front: r.front, Resource: r.op.Resource, Kind: r.op.Kind,
			Start: r.start, End: r.end, Cells: r.op.Cells, Bytes: r.op.Bytes,
		})
		id = r.critParent
	}
	// Reverse into execution order.
	for l, rr := 0, len(path)-1; l < rr; l, rr = l+1, rr-1 {
		path[l], path[rr] = path[rr], path[l]
	}
	return path
}
