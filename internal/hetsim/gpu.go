package hetsim

import "time"

// GPUModel describes the accelerator.
//
// The model corresponds to one kernel launch per framework iteration with a
// thread per cell (paper §IV-A): the kernel pays a fixed launch latency,
// then executes ceil(cells / Lanes()) SIMT waves, each costing WaveCost.
// WaveCost is dominated by global-memory round trips, so uncoalesced access
// multiplies it by UncoalescedPenalty (paper §IV-B).
type GPUModel struct {
	// SMX is the number of streaming multiprocessors.
	SMX int
	// CoresPerSMX is the number of CUDA cores per multiprocessor.
	CoresPerSMX int
	// WarpSize is the SIMT width (reporting only; lanes already include it).
	WarpSize int
	// LaunchLatency is the fixed host-side cost of one kernel launch.
	LaunchLatency time.Duration
	// WaveCost is the time for one full-width wave of cells, coalesced.
	WaveCost time.Duration
	// UncoalescedPenalty multiplies WaveCost when the table layout does not
	// place an iteration's cells contiguously (>= 1).
	UncoalescedPenalty float64
}

// Lanes returns the total number of concurrently executing cell threads.
func (g GPUModel) Lanes() int {
	l := g.SMX * g.CoresPerSMX
	if l < 1 {
		return 1
	}
	return l
}

// KernelDuration returns the simulated duration of one kernel computing
// cells table cells. coalesced reports whether the iteration's cells are
// contiguous in device memory (see table layouts).
//
// Execution time is linear in the number of waves with a one-wave floor:
// launch + WaveCost * max(1, cells/Lanes). A fractional last wave costs its
// fraction, reflecting that real SMX occupancy tapers smoothly rather than
// in whole-device steps (warps retire independently).
func (g GPUModel) KernelDuration(cells int, coalesced bool) time.Duration {
	if cells <= 0 {
		return 0
	}
	waves := float64(cells) / float64(g.Lanes())
	if waves < 1 {
		waves = 1
	}
	per := float64(g.WaveCost)
	if !coalesced && g.UncoalescedPenalty > 1 {
		per *= g.UncoalescedPenalty
	}
	return g.LaunchLatency + time.Duration(waves*per)
}

// MarginalCellCostNs returns the asymptotic per-cell cost of large
// coalesced kernels in (fractional) nanoseconds. Wide devices push this
// below one nanosecond, so it cannot be a time.Duration.
func (g GPUModel) MarginalCellCostNs() float64 {
	return float64(g.WaveCost) / float64(g.Lanes())
}

// Throughput returns the asymptotic throughput in cells per second for
// large coalesced kernels.
func (g GPUModel) Throughput() float64 {
	if g.WaveCost <= 0 {
		return 0
	}
	return float64(g.Lanes()) / g.WaveCost.Seconds()
}

// ChunkedKernelDuration models the §IV-A counterfactual for the GPU: each
// thread serially processes chunk cells instead of one. The thread count
// drops to ceil(cells/chunk), but every SIMT wave now runs chunk times
// longer — so unless the cell count exceeds the device width by more than
// the chunk factor, chunking only serializes work the hardware could have
// run in parallel. chunk < 1 is treated as 1 (the thread-per-cell case).
func (g GPUModel) ChunkedKernelDuration(cells, chunk int, coalesced bool) time.Duration {
	if cells <= 0 {
		return 0
	}
	if chunk < 1 {
		chunk = 1
	}
	threads := ceilDiv(cells, chunk)
	waves := float64(threads) / float64(g.Lanes())
	if waves < 1 {
		waves = 1
	}
	per := float64(g.WaveCost) * float64(chunk)
	if !coalesced && g.UncoalescedPenalty > 1 {
		per *= g.UncoalescedPenalty
	}
	return g.LaunchLatency + time.Duration(waves*per)
}
