package hetsim

import "time"

// CPUModel describes the host multicore processor.
//
// The model corresponds to OpenMP-style execution: each parallel region
// (one framework iteration) pays a fixed fork/join dispatch overhead, then
// the cells are divided evenly among hardware threads, each processing its
// chunk sequentially at CellCost per cell. This is the "thread per block"
// strategy of paper §IV-A; the "thread per cell" anti-pattern (spawning one
// lightweight task per cell) is modeled by ThreadPerCellDuration and used
// only by the chunking ablation.
type CPUModel struct {
	// Cores is the number of physical cores (reporting only).
	Cores int
	// Threads is the number of hardware threads used by parallel regions.
	Threads int
	// ClockGHz is the nominal core clock (reporting only).
	ClockGHz float64
	// CellCost is the time for one thread to compute one cell.
	CellCost time.Duration
	// DispatchOverhead is the fork/join cost of one parallel region.
	DispatchOverhead time.Duration
	// SpawnCost is the per-task overhead in thread-per-cell mode.
	SpawnCost time.Duration
	// StridePenalty multiplies CellCost when the iteration's cells are not
	// contiguous in memory (e.g. inverted-L fronts in a row-major table),
	// modeling the extra cache misses. 1.0 means no penalty; values below
	// 1.0 are treated as 1.0.
	StridePenalty float64
}

func (c CPUModel) stridePenalty(contiguous bool) float64 {
	if contiguous || c.StridePenalty <= 1 {
		return 1
	}
	return c.StridePenalty
}

// RegionDuration returns the simulated time of one parallel region
// computing cells table cells, with chunked (thread-per-block) scheduling.
// contiguous reports whether the cells are laid out contiguously.
func (c CPUModel) RegionDuration(cells int, contiguous bool) time.Duration {
	if cells <= 0 {
		return 0
	}
	threads := c.Threads
	if threads < 1 {
		threads = 1
	}
	perThread := ceilDiv(cells, threads)
	compute := time.Duration(float64(perThread) * float64(c.CellCost) * c.stridePenalty(contiguous))
	return c.DispatchOverhead + compute
}

// SequentialDuration returns the time of one thread computing the cells
// with no dispatch overhead: the cost of CPU work inside an already-running
// region, used when the framework keeps a single core warm on tiny fronts.
func (c CPUModel) SequentialDuration(cells int, contiguous bool) time.Duration {
	if cells <= 0 {
		return 0
	}
	return time.Duration(float64(cells) * float64(c.CellCost) * c.stridePenalty(contiguous))
}

// ThreadPerCellDuration returns the simulated time of a parallel region that
// spawns one task per cell (paper §IV-A's rejected strategy): every cell
// pays SpawnCost on top of the chunked compute time.
func (c CPUModel) ThreadPerCellDuration(cells int, contiguous bool) time.Duration {
	if cells <= 0 {
		return 0
	}
	spawn := time.Duration(cells) * c.SpawnCost
	return c.RegionDuration(cells, contiguous) + spawn
}

// Throughput returns the model's asymptotic throughput in cells per second
// for large contiguous regions.
func (c CPUModel) Throughput() float64 {
	if c.CellCost <= 0 {
		return 0
	}
	threads := c.Threads
	if threads < 1 {
		threads = 1
	}
	return float64(threads) / c.CellCost.Seconds()
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
