package hetsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCPURegionDuration(t *testing.T) {
	c := CPUModel{Threads: 4, CellCost: 10, DispatchOverhead: 100}
	tests := []struct {
		cells int
		want  time.Duration
	}{
		{0, 0},
		{1, 110},    // dispatch + ceil(1/4)*10
		{4, 110},    // one cell per thread
		{5, 120},    // ceil(5/4)=2 waves of cells
		{400, 1100}, // 100 + 100*10
	}
	for _, tt := range tests {
		if got := c.RegionDuration(tt.cells, true); got != tt.want {
			t.Errorf("RegionDuration(%d) = %v, want %v", tt.cells, got, tt.want)
		}
	}
}

func TestCPUStridePenalty(t *testing.T) {
	c := CPUModel{Threads: 1, CellCost: 10, StridePenalty: 1.5}
	cont := c.RegionDuration(100, true)
	strided := c.RegionDuration(100, false)
	if strided <= cont {
		t.Errorf("strided %v should exceed contiguous %v", strided, cont)
	}
	if want := time.Duration(1500); strided != want {
		t.Errorf("strided = %v, want %v", strided, want)
	}
}

func TestCPUStridePenaltyBelowOneIsIgnored(t *testing.T) {
	c := CPUModel{Threads: 1, CellCost: 10, StridePenalty: 0.5}
	if got, want := c.RegionDuration(10, false), time.Duration(100); got != want {
		t.Errorf("penalty<1 not clamped: got %v, want %v", got, want)
	}
}

func TestCPUThreadPerCellCostsMore(t *testing.T) {
	c := HeteroHigh().CPU
	chunked := c.RegionDuration(1000, true)
	perCell := c.ThreadPerCellDuration(1000, true)
	if perCell <= chunked {
		t.Errorf("thread-per-cell %v should exceed chunked %v", perCell, chunked)
	}
}

func TestCPUSequentialDurationNoDispatch(t *testing.T) {
	c := CPUModel{Threads: 8, CellCost: 7, DispatchOverhead: 1000}
	if got, want := c.SequentialDuration(10, true), time.Duration(70); got != want {
		t.Errorf("SequentialDuration = %v, want %v", got, want)
	}
}

func TestCPUZeroThreadsClamped(t *testing.T) {
	c := CPUModel{Threads: 0, CellCost: 10}
	if got, want := c.RegionDuration(5, true), time.Duration(50); got != want {
		t.Errorf("RegionDuration with 0 threads = %v, want %v", got, want)
	}
}

func TestGPUKernelDuration(t *testing.T) {
	g := GPUModel{SMX: 2, CoresPerSMX: 100, LaunchLatency: 1000, WaveCost: 50, UncoalescedPenalty: 4}
	tests := []struct {
		cells     int
		coalesced bool
		want      time.Duration
	}{
		{0, true, 0},
		{1, true, 1050},    // launch + the one-wave floor
		{200, true, 1050},  // exactly one wave
		{300, true, 1075},  // one and a half waves
		{400, true, 1100},  // two waves
		{200, false, 1200}, // one wave at 4x
	}
	for _, tt := range tests {
		if got := g.KernelDuration(tt.cells, tt.coalesced); got != tt.want {
			t.Errorf("KernelDuration(%d, %v) = %v, want %v", tt.cells, tt.coalesced, got, tt.want)
		}
	}
}

func TestGPULanesClamped(t *testing.T) {
	g := GPUModel{SMX: 0, CoresPerSMX: 0}
	if g.Lanes() != 1 {
		t.Errorf("Lanes() = %d, want clamp to 1", g.Lanes())
	}
}

func TestPCIeTransferDuration(t *testing.T) {
	p := PCIeModel{
		LatencyPageable: 3000, LatencyPinned: 800,
		BandwidthPageable: 1e9, BandwidthPinned: 2e9,
	}
	if got := p.TransferDuration(0, true); got != 0 {
		t.Errorf("zero bytes should cost 0, got %v", got)
	}
	// 1e6 bytes at 1 GB/s = 1 ms + 3 us latency.
	if got, want := p.TransferDuration(1_000_000, false), 3*time.Microsecond+time.Millisecond; got != want {
		t.Errorf("pageable 1MB = %v, want %v", got, want)
	}
	// Pinned is strictly faster for any size.
	for _, n := range []int{1, 64, 4096, 1 << 20} {
		if p.TransferDuration(n, true) >= p.TransferDuration(n, false) {
			t.Errorf("pinned not faster for %d bytes", n)
		}
	}
}

func TestPlatformPresetsValidate(t *testing.T) {
	for _, p := range Platforms() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestPlatformGeometryMatchesPaper(t *testing.T) {
	high := HeteroHigh()
	if got := high.GPU.Lanes(); got != 2496 {
		t.Errorf("K20 lanes = %d, want 2496 (13 SMX x 192)", got)
	}
	if high.CPU.Cores != 6 || high.CPU.Threads != 12 {
		t.Errorf("i7-980 = %d cores/%d threads, want 6/12", high.CPU.Cores, high.CPU.Threads)
	}
	low := HeteroLow()
	if got := low.GPU.Lanes(); got != 384 {
		t.Errorf("GT650M lanes = %d, want 384 (2 SMX x 192)", got)
	}
	if low.CPU.Cores != 4 || low.CPU.Threads != 8 {
		t.Errorf("i7-3632QM = %d cores/%d threads, want 4/8", low.CPU.Cores, low.CPU.Threads)
	}
}

func TestPlatformRelativeThroughput(t *testing.T) {
	// The calibration intends the K20 to be roughly an order of magnitude
	// above its CPU in peak throughput, and the GT650M a few-x above its
	// weaker CPU — which is what makes the GPU the primary engine and the
	// CPU a profitable helper, as in the paper's measurements.
	high := HeteroHigh()
	ratio := high.GPU.Throughput() / high.CPU.Throughput()
	if ratio < 5 || ratio > 15 {
		t.Errorf("Hetero-High GPU/CPU throughput ratio = %.2f, want in [5,15]", ratio)
	}
	low := HeteroLow()
	ratioLow := low.GPU.Throughput() / low.CPU.Throughput()
	if ratioLow < 2 || ratioLow > 8 {
		t.Errorf("Hetero-Low GPU/CPU throughput ratio = %.2f, want in [2,8]", ratioLow)
	}
}

func TestPlatformByName(t *testing.T) {
	p, err := PlatformByName("Hetero-High")
	if err != nil || p.Name != "Hetero-High" {
		t.Errorf("PlatformByName(Hetero-High) = %v, %v", p, err)
	}
	if _, err := PlatformByName("nope"); err == nil {
		t.Error("expected error for unknown platform")
	}
}

func TestPlatformValidateCatchesBadValues(t *testing.T) {
	p := HeteroHigh()
	p.GPU.UncoalescedPenalty = 0.5
	p.CPU.Threads = 0
	if err := p.Validate(); err == nil {
		t.Error("expected validation error")
	}
}

// Property: kernel duration is monotone in cells.
func TestGPUKernelMonotoneProperty(t *testing.T) {
	g := HeteroHigh().GPU
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return g.KernelDuration(x, true) <= g.KernelDuration(y, true)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CPU region duration is monotone in cells and never cheaper than
// sequential single-thread duration divided by thread count.
func TestCPURegionMonotoneProperty(t *testing.T) {
	c := HeteroLow().CPU
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return c.RegionDuration(x, true) <= c.RegionDuration(y, true)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: transfer duration is monotone in bytes for both memory kinds.
func TestPCIeMonotoneProperty(t *testing.T) {
	p := HeteroHigh().Bus
	f := func(a, b uint32, pinned bool) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return p.TransferDuration(x, pinned) <= p.TransferDuration(y, pinned)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceString(t *testing.T) {
	tests := []struct {
		r    Resource
		want string
	}{
		{ResCPU, "cpu"}, {ResGPU, "gpu"}, {ResCopyH2D, "h2d"}, {ResCopyD2H, "d2h"},
		{numFixedResources, "stream0"}, {numFixedResources + 1, "stream1"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("Resource(%d).String() = %q, want %q", int(tt.r), got, tt.want)
		}
	}
}

func TestOpKindString(t *testing.T) {
	if OpCompute.String() != "compute" || OpTransfer.String() != "transfer" || OpSync.String() != "sync" {
		t.Error("OpKind strings wrong")
	}
	if OpKind(99).String() != "unknown" {
		t.Error("unknown OpKind string wrong")
	}
}

func TestHeteroPhiPreset(t *testing.T) {
	phi := HeteroPhi()
	if err := phi.Validate(); err != nil {
		t.Fatal(err)
	}
	if phi.Name != "Hetero-Phi" {
		t.Errorf("name = %q", phi.Name)
	}
	if got := phi.GPU.Lanes(); got != 240 {
		t.Errorf("Phi lanes = %d, want 240 (60 cores x 4 threads)", got)
	}
	// The Phi sits between the host CPU and the K20 in peak throughput.
	high := HeteroHigh()
	if !(phi.GPU.Throughput() > high.CPU.Throughput() && phi.GPU.Throughput() < high.GPU.Throughput()) {
		t.Errorf("Phi throughput %.2e not between CPU %.2e and K20 %.2e",
			phi.GPU.Throughput(), high.CPU.Throughput(), high.GPU.Throughput())
	}
	// Offload regions start slower than CUDA kernel launches.
	if phi.GPU.LaunchLatency <= high.GPU.LaunchLatency {
		t.Error("Phi offload latency should exceed the K20 kernel launch latency")
	}
	if p, err := PlatformByName("Hetero-Phi"); err != nil || p.Name != "Hetero-Phi" {
		t.Errorf("PlatformByName(Hetero-Phi) = %v, %v", p, err)
	}
}

func TestEnergyAccounting(t *testing.T) {
	p := HeteroHigh()
	s := NewSim(p)
	s.Submit(Op{Resource: ResCPU, Kind: OpCompute, Duration: time.Second})
	s.Submit(Op{Resource: ResGPU, Kind: OpCompute, Duration: 2 * time.Second})
	tl := s.Timeline()
	// Makespan 2s: base 2*80 + cpu 1*130 + gpu 2*225 = 740 J.
	if got := p.Energy(tl); got < 739.9 || got > 740.1 {
		t.Errorf("energy = %v J, want 740", got)
	}
	var empty Timeline
	if p.Energy(empty) != 0 {
		t.Error("empty timeline should cost 0 J")
	}
}

func TestEnergyChargesExtraStreams(t *testing.T) {
	p := HeteroHigh()
	s := NewSim(p)
	st := s.NewNamedStream("accel2")
	s.Submit(Op{Resource: st, Kind: OpCompute, Duration: time.Second})
	// base 1*80 + stream 1*225 = 305 J.
	if got := p.Energy(s.Timeline()); got < 304.9 || got > 305.1 {
		t.Errorf("energy = %v J, want 305", got)
	}
}

func TestPowerModelsPerPlatform(t *testing.T) {
	if hw := HeteroHigh().Power(); hw.GPUActiveW != 225 || hw.CPUActiveW != 130 {
		t.Errorf("Hetero-High power = %+v", hw)
	}
	if lw := HeteroLow().Power(); lw.GPUActiveW != 45 || lw.CPUActiveW != 35 {
		t.Errorf("Hetero-Low power = %+v", lw)
	}
}

func TestChunkedKernelDuration(t *testing.T) {
	g := HeteroHigh().GPU
	// chunk=1 is exactly the thread-per-cell model.
	for _, cells := range []int{1, 100, 5000, 100000} {
		if g.ChunkedKernelDuration(cells, 1, true) != g.KernelDuration(cells, true) {
			t.Errorf("chunk=1 differs from thread-per-cell at %d cells", cells)
		}
	}
	// Below device width, chunking strictly serializes.
	if g.ChunkedKernelDuration(2000, 8, true) <= g.KernelDuration(2000, true) {
		t.Error("chunking under-width work should be slower")
	}
	// Even far above device width, chunking can never win: the same cells
	// run at the same per-lane rate, only with fewer independent threads.
	if g.ChunkedKernelDuration(1_000_000, 8, true) < g.KernelDuration(1_000_000, true) {
		t.Error("chunking should never beat thread-per-cell")
	}
	if g.ChunkedKernelDuration(0, 4, true) != 0 {
		t.Error("zero cells should cost 0")
	}
	if g.ChunkedKernelDuration(100, 0, true) != g.KernelDuration(100, true) {
		t.Error("chunk<1 should clamp to thread-per-cell")
	}
}

func TestHeteroModernPreset(t *testing.T) {
	m := HeteroModern()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.GPU.Lanes(); got != 6912 {
		t.Errorf("A100 lanes = %d, want 6912", got)
	}
	high := HeteroHigh()
	// A decade of scaling: the accelerator grows >10x in throughput while
	// launch latency shrinks by less than 2x.
	if m.GPU.Throughput() < 10*high.GPU.Throughput() {
		t.Error("modern GPU should be >=10x the K20")
	}
	if m.GPU.LaunchLatency < high.GPU.LaunchLatency/2 {
		t.Error("launch latency should not shrink as fast as throughput grows")
	}
	if p, err := PlatformByName("Hetero-Modern"); err != nil || p.Name != "Hetero-Modern" {
		t.Errorf("PlatformByName(Hetero-Modern) = %v, %v", p, err)
	}
}

func TestPlatformJSONRoundTrip(t *testing.T) {
	for _, p := range append(Platforms(), HeteroPhi(), HeteroModern()) {
		data, err := DumpPlatform(p)
		if err != nil {
			t.Fatal(err)
		}
		back, err := LoadPlatform(data)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if back.Name != p.Name || back.GPU.Lanes() != p.GPU.Lanes() ||
			back.CPU.CellCost != p.CPU.CellCost || back.CopyEngines != p.CopyEngines {
			t.Errorf("%s: round trip lost fields", p.Name)
		}
	}
}

func TestLoadPlatformRejectsInvalid(t *testing.T) {
	if _, err := LoadPlatform([]byte(`{"Name":"x"}`)); err == nil {
		t.Error("incomplete platform should fail validation")
	}
	if _, err := LoadPlatform([]byte(`{nope`)); err == nil {
		t.Error("bad JSON should error")
	}
}
