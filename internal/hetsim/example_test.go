package hetsim_test

import (
	"fmt"
	"time"

	"repro/internal/hetsim"
)

// A minimal copy/compute pipeline: the transfer for iteration 2 overlaps
// the kernel of iteration 1 because the DMA engine is its own queue.
func ExampleSim() {
	s := hetsim.NewSim(hetsim.HeteroHigh())
	up1 := s.Submit(hetsim.Op{Resource: hetsim.ResCopyH2D, Duration: 3 * time.Microsecond, Label: "h2d:1"})
	k1 := s.Submit(hetsim.Op{Resource: hetsim.ResGPU, Duration: 5 * time.Microsecond, Label: "k1"}, up1)
	up2 := s.Submit(hetsim.Op{Resource: hetsim.ResCopyH2D, Duration: 3 * time.Microsecond, Label: "h2d:2"})
	k2 := s.Submit(hetsim.Op{Resource: hetsim.ResGPU, Duration: 5 * time.Microsecond, Label: "k2"}, up2)
	_ = k1
	fmt.Println(s.EndOf(k2), s.Makespan())
	// Output:
	// 13µs 13µs
}

// The platform presets mirror the paper's testbeds.
func ExamplePlatformByName() {
	p, _ := hetsim.PlatformByName("Hetero-High")
	fmt.Println(p.GPU.Lanes(), p.CPU.Cores)
	// Output:
	// 2496 6
}
