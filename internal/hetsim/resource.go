package hetsim

import "fmt"

// Resource identifies an execution queue in the simulated platform. Each
// resource executes the operations submitted to it strictly in submission
// order; distinct resources proceed concurrently subject to dependency
// edges.
//
// The fixed resources model the devices of a heterogeneous node. Additional
// stream resources (see Sim.NewStream) model extra CUDA streams: in-order
// queues that share no implicit ordering with any other queue.
type Resource int

const (
	// ResCPU is the host CPU. One parallel-for region at a time, mirroring
	// an OpenMP-style fork/join execution model.
	ResCPU Resource = iota
	// ResGPU is the GPU compute engine. One kernel at a time, mirroring a
	// single in-order CUDA stream used for kernels.
	ResGPU
	// ResCopyH2D is the host-to-device DMA engine.
	ResCopyH2D
	// ResCopyD2H is the device-to-host DMA engine. On platforms with a
	// single copy engine (Platform.CopyEngines == 1) the simulator folds
	// this onto ResCopyH2D, serializing all transfers.
	ResCopyD2H

	numFixedResources
)

// String returns a short human-readable resource name.
func (r Resource) String() string {
	switch r {
	case ResCPU:
		return "cpu"
	case ResGPU:
		return "gpu"
	case ResCopyH2D:
		return "h2d"
	case ResCopyD2H:
		return "d2h"
	default:
		if r >= numFixedResources {
			return fmt.Sprintf("stream%d", int(r-numFixedResources))
		}
		return fmt.Sprintf("resource(%d)", int(r))
	}
}

// IsCopy reports whether the resource is a DMA copy engine.
func (r Resource) IsCopy() bool { return r == ResCopyH2D || r == ResCopyD2H }
