// Package hetsim is a deterministic discrete-event simulator of a
// heterogeneous compute node consisting of a multicore CPU, a CUDA-class
// GPU, and a PCIe bus connecting them.
//
// The simulator replaces the physical CPU+GPU platforms used in the paper
// "A Novel Heterogeneous Framework for Local Dependency Dynamic Programming
// Problems" (Kumar & Kothapalli, 2015). It models the first-order costs that
// shape every measurement in the paper:
//
//   - CPU parallel-for dispatch overhead and per-cell throughput across a
//     fixed number of hardware threads;
//   - GPU kernel-launch latency, SIMT execution width (SMX count x cores per
//     SMX), per-wave cost, and a multiplicative penalty for uncoalesced
//     global-memory access;
//   - PCIe transfer latency and bandwidth, with distinct pinned and pageable
//     paths and one or two DMA copy engines;
//   - CUDA-stream-like in-order queues with explicit cross-queue
//     dependencies, which is what makes copy/compute pipelining observable.
//
// Work is described as a DAG of operations (Op) submitted to a Sim. Each Op
// executes on one Resource (CPU, GPU, a copy engine, or an extra stream).
// Resources process their operations in submission order (FIFO), and an
// operation additionally waits for all of its declared dependencies. The
// simulator resolves integer-nanosecond start/end times for every operation
// and records them on a Timeline.
//
// Beyond schedule resolution the package provides: calibrated platform
// presets mirroring the paper's testbeds (HeteroHigh, HeteroLow) plus
// extension platforms (HeteroPhi, HeteroModern) and JSON-loadable custom
// calibrations; named extra streams for multi-accelerator configurations;
// an energy model (Platform.Energy); and critical-path extraction
// (Sim.CriticalPath) for makespan attribution.
//
// Everything is deterministic: the same op DAG always produces the same
// Timeline, byte for byte.
package hetsim
