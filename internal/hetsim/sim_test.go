package hetsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSubmitSequentialOnOneResource(t *testing.T) {
	s := NewSim(HeteroHigh())
	a := s.Submit(Op{Resource: ResCPU, Duration: 10 * time.Microsecond, Label: "a"})
	b := s.Submit(Op{Resource: ResCPU, Duration: 5 * time.Microsecond, Label: "b"})
	if got := s.EndOf(a); got != 10*time.Microsecond {
		t.Errorf("EndOf(a) = %v, want 10us", got)
	}
	if got := s.EndOf(b); got != 15*time.Microsecond {
		t.Errorf("EndOf(b) = %v, want 15us (FIFO on same resource)", got)
	}
}

func TestSubmitIndependentResourcesOverlap(t *testing.T) {
	s := NewSim(HeteroHigh())
	s.Submit(Op{Resource: ResCPU, Duration: 10 * time.Microsecond})
	s.Submit(Op{Resource: ResGPU, Duration: 8 * time.Microsecond})
	if got := s.Makespan(); got != 10*time.Microsecond {
		t.Errorf("Makespan = %v, want 10us (full overlap)", got)
	}
}

func TestSubmitDependencyDelaysStart(t *testing.T) {
	s := NewSim(HeteroHigh())
	a := s.Submit(Op{Resource: ResCPU, Duration: 10 * time.Microsecond})
	b := s.Submit(Op{Resource: ResGPU, Duration: 4 * time.Microsecond}, a)
	if got := s.EndOf(b); got != 14*time.Microsecond {
		t.Errorf("EndOf(b) = %v, want 14us (starts after a)", got)
	}
}

func TestSubmitNoOpDependencyIgnored(t *testing.T) {
	s := NewSim(HeteroHigh())
	b := s.Submit(Op{Resource: ResGPU, Duration: 4 * time.Microsecond}, NoOp, NoOp)
	if got := s.EndOf(b); got != 4*time.Microsecond {
		t.Errorf("EndOf(b) = %v, want 4us (NoOp deps ignored)", got)
	}
}

func TestSubmitDiamondDependency(t *testing.T) {
	s := NewSim(HeteroHigh())
	a := s.Submit(Op{Resource: ResCPU, Duration: 2 * time.Microsecond})
	b := s.Submit(Op{Resource: ResGPU, Duration: 6 * time.Microsecond}, a)
	c := s.Submit(Op{Resource: ResCopyH2D, Duration: 1 * time.Microsecond}, a)
	d := s.Submit(Op{Resource: ResCPU, Duration: 1 * time.Microsecond}, b, c)
	// d starts at max(end(b)=8us, end(c)=3us, cpu free at 2us) = 8us.
	if got := s.EndOf(d); got != 9*time.Microsecond {
		t.Errorf("EndOf(d) = %v, want 9us", got)
	}
}

func TestCopyEngineFoldingOnSingleEnginePlatform(t *testing.T) {
	low := HeteroLow() // one copy engine
	s := NewSim(low)
	a := s.Submit(Op{Resource: ResCopyH2D, Duration: 5 * time.Microsecond})
	b := s.Submit(Op{Resource: ResCopyD2H, Duration: 5 * time.Microsecond})
	if got := s.EndOf(b); got != 10*time.Microsecond {
		t.Errorf("EndOf(b) = %v, want 10us (transfers serialized on one engine)", got)
	}
	_ = a

	high := HeteroHigh() // two copy engines
	s2 := NewSim(high)
	s2.Submit(Op{Resource: ResCopyH2D, Duration: 5 * time.Microsecond})
	b2 := s2.Submit(Op{Resource: ResCopyD2H, Duration: 5 * time.Microsecond})
	if got := s2.EndOf(b2); got != 5*time.Microsecond {
		t.Errorf("EndOf(b2) = %v, want 5us (transfers overlap on two engines)", got)
	}
}

func TestNewStreamIsIndependentQueue(t *testing.T) {
	s := NewSim(HeteroHigh())
	st := s.NewStream()
	s.Submit(Op{Resource: ResGPU, Duration: 10 * time.Microsecond})
	b := s.Submit(Op{Resource: st, Duration: 3 * time.Microsecond})
	if got := s.EndOf(b); got != 3*time.Microsecond {
		t.Errorf("EndOf(stream op) = %v, want 3us (no implicit ordering vs GPU)", got)
	}
}

func TestSubmitPanicsOnNegativeDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative duration")
		}
	}()
	NewSim(HeteroHigh()).Submit(Op{Resource: ResCPU, Duration: -1})
}

func TestSubmitPanicsOnForwardDependency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on forward dep")
		}
	}()
	NewSim(HeteroHigh()).Submit(Op{Resource: ResCPU, Duration: 1}, OpID(3))
}

func TestEndOfNoOpIsZero(t *testing.T) {
	if got := NewSim(HeteroHigh()).EndOf(NoOp); got != 0 {
		t.Errorf("EndOf(NoOp) = %v, want 0", got)
	}
}

func TestMakespanEmpty(t *testing.T) {
	if got := NewSim(HeteroHigh()).Makespan(); got != 0 {
		t.Errorf("empty makespan = %v, want 0", got)
	}
}

// Property: the makespan is at least the busy time of every resource and at
// most the sum of all op durations (list scheduling on in-order queues).
func TestMakespanBoundsProperty(t *testing.T) {
	f := func(durs []uint16, resPick []uint8) bool {
		s := NewSim(HeteroHigh())
		var total time.Duration
		var prev OpID = NoOp
		n := len(durs)
		if n > len(resPick) {
			n = len(resPick)
		}
		for i := 0; i < n; i++ {
			d := time.Duration(durs[i]) * time.Nanosecond
			r := Resource(int(resPick[i]) % int(numFixedResources))
			// Chain every third op to the previous one to create cross-queue deps.
			var deps []OpID
			if i%3 == 0 {
				deps = append(deps, prev)
			}
			prev = s.Submit(Op{Resource: r, Duration: d}, deps...)
			total += d
		}
		m := s.Makespan()
		if m > total {
			return false
		}
		tl := s.Timeline()
		for _, r := range tl.Resources() {
			if tl.BusyTime(r) > m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ops on the same resource never overlap.
func TestNoIntraResourceOverlapProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		s := NewSim(HeteroLow())
		for i, d := range durs {
			r := Resource(i % int(numFixedResources))
			s.Submit(Op{Resource: r, Duration: time.Duration(d)})
		}
		tl := s.Timeline()
		byRes := map[Resource][]OpRecord{}
		for _, rec := range tl.Records {
			byRes[rec.Resource] = append(byRes[rec.Resource], rec)
		}
		for _, recs := range byRes {
			for i := 1; i < len(recs); i++ {
				if recs[i].Start < recs[i-1].End {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimelineSnapshotIsIndependent(t *testing.T) {
	s := NewSim(HeteroHigh())
	s.Submit(Op{Resource: ResCPU, Duration: time.Microsecond, Label: "x", Cells: 7})
	tl := s.Timeline()
	s.Submit(Op{Resource: ResCPU, Duration: time.Microsecond, Label: "y"})
	if len(tl.Records) != 1 {
		t.Errorf("snapshot grew with later submissions: %d records", len(tl.Records))
	}
	if tl.Records[0].Label != "x" || tl.Records[0].Cells != 7 {
		t.Errorf("snapshot record corrupted: %+v", tl.Records[0])
	}
}

func TestSimAccessors(t *testing.T) {
	p := HeteroHigh()
	s := NewSim(p)
	if s.Platform() != p {
		t.Error("Platform accessor wrong")
	}
	if s.NumOps() != 0 {
		t.Error("fresh sim should have 0 ops")
	}
	s.Submit(Op{Resource: ResCPU, Duration: 1})
	if s.NumOps() != 1 {
		t.Error("NumOps should count submissions")
	}
	if !ResCopyH2D.IsCopy() || !ResCopyD2H.IsCopy() || ResCPU.IsCopy() || ResGPU.IsCopy() {
		t.Error("IsCopy wrong")
	}
	// The K20's per-cell marginal is sub-nanosecond: 300ns / 2496 lanes.
	if got := p.GPU.MarginalCellCostNs(); got <= 0 || got >= 1 {
		t.Errorf("MarginalCellCostNs = %v, want in (0,1)", got)
	}
}

func TestTimelineNameOf(t *testing.T) {
	s := NewSim(HeteroHigh())
	named := s.NewNamedStream("phi")
	anon := s.NewStream()
	s.Submit(Op{Resource: named, Duration: 1})
	s.Submit(Op{Resource: anon, Duration: 1})
	tl := s.Timeline()
	if tl.NameOf(named) != "phi" {
		t.Errorf("NameOf(named) = %q", tl.NameOf(named))
	}
	if tl.NameOf(anon) != "stream1" {
		t.Errorf("NameOf(anon) = %q", tl.NameOf(anon))
	}
	if tl.NameOf(ResCPU) != "cpu" {
		t.Errorf("NameOf(cpu) = %q", tl.NameOf(ResCPU))
	}
}

func TestCriticalPathSimpleChain(t *testing.T) {
	s := NewSim(HeteroHigh())
	a := s.Submit(Op{Resource: ResCPU, Duration: 10, Label: "a"})
	b := s.Submit(Op{Resource: ResGPU, Duration: 20, Label: "b"}, a)
	c := s.Submit(Op{Resource: ResCPU, Duration: 5, Label: "c"}, b)
	_ = c
	path := s.CriticalPath()
	if len(path) != 3 {
		t.Fatalf("path length = %d, want 3", len(path))
	}
	if path[0].Label != "a" || path[1].Label != "b" || path[2].Label != "c" {
		t.Errorf("path = %v", path)
	}
	// Waits compose exactly: each op starts when its predecessor ends.
	for i := 1; i < len(path); i++ {
		if path[i].Start != path[i-1].End {
			t.Errorf("gap in critical path between %q and %q", path[i-1].Label, path[i].Label)
		}
	}
}

func TestCriticalPathSkipsOffPathOps(t *testing.T) {
	s := NewSim(HeteroHigh())
	a := s.Submit(Op{Resource: ResCPU, Duration: 100, Label: "long"})
	s.Submit(Op{Resource: ResCopyH2D, Duration: 1, Label: "short"})
	b := s.Submit(Op{Resource: ResGPU, Duration: 10, Label: "tail"}, a)
	_ = b
	path := s.CriticalPath()
	if len(path) != 2 || path[0].Label != "long" || path[1].Label != "tail" {
		t.Errorf("path = %+v, want long->tail", path)
	}
}

func TestCriticalPathQueueBound(t *testing.T) {
	// Two ops on the same queue with no explicit deps: the second waits on
	// queue order, so both are on the path.
	s := NewSim(HeteroHigh())
	s.Submit(Op{Resource: ResGPU, Duration: 7, Label: "k1"})
	s.Submit(Op{Resource: ResGPU, Duration: 9, Label: "k2"})
	path := s.CriticalPath()
	if len(path) != 2 || path[0].Label != "k1" || path[1].Label != "k2" {
		t.Errorf("path = %+v", path)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	if got := NewSim(HeteroHigh()).CriticalPath(); got != nil {
		t.Errorf("empty sim path = %v", got)
	}
}

// Property: the critical path is contiguous (no waits between consecutive
// ops) and spans from some start to the makespan.
func TestCriticalPathContiguityProperty(t *testing.T) {
	f := func(durs []uint16, resPick []uint8) bool {
		s := NewSim(HeteroHigh())
		var prev OpID = NoOp
		n := min(len(durs), len(resPick))
		for i := 0; i < n; i++ {
			r := Resource(int(resPick[i]) % int(numFixedResources))
			var deps []OpID
			if i%2 == 0 {
				deps = append(deps, prev)
			}
			prev = s.Submit(Op{Resource: r, Duration: time.Duration(durs[i])}, deps...)
		}
		path := s.CriticalPath()
		if n == 0 {
			return path == nil
		}
		if len(path) == 0 || path[len(path)-1].End != s.Makespan() {
			return false
		}
		for i := 1; i < len(path); i++ {
			if path[i].Start != path[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
