package hetsim

import (
	"testing"
	"time"
)

func buildTimeline(t *testing.T) Timeline {
	t.Helper()
	s := NewSim(HeteroHigh())
	a := s.Submit(Op{Resource: ResCPU, Kind: OpCompute, Duration: 10 * time.Microsecond, Cells: 100})
	s.Submit(Op{Resource: ResGPU, Kind: OpCompute, Duration: 20 * time.Microsecond, Cells: 900}, a)
	s.Submit(Op{Resource: ResCopyH2D, Kind: OpTransfer, Duration: 2 * time.Microsecond, Bytes: 64}, a)
	s.Submit(Op{Resource: ResCopyD2H, Kind: OpTransfer, Duration: 3 * time.Microsecond, Bytes: 128})
	return s.Timeline()
}

func TestTimelineMakespan(t *testing.T) {
	tl := buildTimeline(t)
	if got, want := tl.Makespan(), 30*time.Microsecond; got != want {
		t.Errorf("Makespan = %v, want %v", got, want)
	}
}

func TestTimelineBusyTime(t *testing.T) {
	tl := buildTimeline(t)
	if got, want := tl.BusyTime(ResCPU), 10*time.Microsecond; got != want {
		t.Errorf("BusyTime(cpu) = %v, want %v", got, want)
	}
	if got, want := tl.BusyTime(ResGPU), 20*time.Microsecond; got != want {
		t.Errorf("BusyTime(gpu) = %v, want %v", got, want)
	}
}

func TestTimelineUtilization(t *testing.T) {
	tl := buildTimeline(t)
	if got := tl.Utilization(ResGPU); got < 0.66 || got > 0.67 {
		t.Errorf("Utilization(gpu) = %v, want ~2/3", got)
	}
	var empty Timeline
	if empty.Utilization(ResCPU) != 0 {
		t.Error("empty timeline utilization should be 0")
	}
}

func TestTimelineCellsAndBytes(t *testing.T) {
	tl := buildTimeline(t)
	if got := tl.CellsOn(ResCPU); got != 100 {
		t.Errorf("CellsOn(cpu) = %d, want 100", got)
	}
	if got := tl.CellsOn(ResGPU); got != 900 {
		t.Errorf("CellsOn(gpu) = %d, want 900", got)
	}
	if got := tl.BytesTransferred(); got != 192 {
		t.Errorf("BytesTransferred = %d, want 192", got)
	}
	if got := tl.TransferCount(); got != 2 {
		t.Errorf("TransferCount = %d, want 2", got)
	}
}

func TestTimelineResourcesSorted(t *testing.T) {
	tl := buildTimeline(t)
	rs := tl.Resources()
	if len(rs) != 4 {
		t.Fatalf("Resources() = %v, want 4 resources", rs)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i] <= rs[i-1] {
			t.Errorf("Resources() not sorted: %v", rs)
		}
	}
}

func TestTimelineSummarize(t *testing.T) {
	tl := buildTimeline(t)
	st := tl.Summarize()
	if st.Makespan != 30*time.Microsecond {
		t.Errorf("Stats.Makespan = %v", st.Makespan)
	}
	if st.CPUCells != 100 || st.GPUCells != 900 {
		t.Errorf("Stats cells = %d/%d, want 100/900", st.CPUCells, st.GPUCells)
	}
	if st.Transfers != 2 || st.BytesMoved != 192 {
		t.Errorf("Stats transfers = %d/%d bytes", st.Transfers, st.BytesMoved)
	}
	if st.OverlapRatio <= 1.0 {
		t.Errorf("OverlapRatio = %v, want > 1 (overlapped execution)", st.OverlapRatio)
	}
	var empty Timeline
	es := empty.Summarize()
	if es.Makespan != 0 || es.OverlapRatio != 0 {
		t.Errorf("empty Summarize = %+v", es)
	}
}

func TestOpRecordDuration(t *testing.T) {
	r := OpRecord{Start: 5, End: 12}
	if r.Duration() != 7 {
		t.Errorf("Duration = %v, want 7", r.Duration())
	}
}
