package hetsim

import "time"

// OpID identifies an operation submitted to a Sim. IDs are dense and start
// at 0, in submission order. The zero Sim has no operations, so OpID values
// are only meaningful for the Sim that issued them.
type OpID int

// NoOp is a sentinel OpID usable as an "absent" dependency. Submit ignores
// it, which lets callers unconditionally pass previous-iteration IDs even on
// the first iteration.
const NoOp OpID = -1

// OpKind classifies an operation for reporting purposes. It has no effect
// on scheduling; scheduling is fully determined by the resource and the
// dependency edges.
type OpKind uint8

const (
	// OpCompute is CPU or GPU computation.
	OpCompute OpKind = iota
	// OpTransfer is a host<->device copy.
	OpTransfer
	// OpSync is a zero- or fixed-duration synchronization marker.
	OpSync
)

// String returns the lowercase name of the kind.
func (k OpKind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpTransfer:
		return "transfer"
	case OpSync:
		return "sync"
	default:
		return "unknown"
	}
}

// Op describes a single unit of simulated work.
//
// Duration must be non-negative. Label is free-form and surfaces in the
// Timeline; conventional labels used by the framework are of the form
// "cpu:iter=12", "gpu:iter=12", "h2d:boundary", "d2h:bulk".
type Op struct {
	Resource Resource
	Kind     OpKind
	Duration time.Duration
	Label    string
	// Cells is the number of table cells this op computes (compute ops) or
	// transfers (transfer ops). Used only for reporting and utilization
	// statistics.
	Cells int
	// Bytes moved by a transfer op. Zero for compute ops.
	Bytes int
}
