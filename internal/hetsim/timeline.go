package hetsim

import (
	"sort"
	"strconv"
	"time"
)

// NoFront marks an operation that is not tagged with a wavefront index.
const NoFront = -1

// OpRecord is one scheduled operation on a Timeline.
type OpRecord struct {
	ID    OpID
	Label string
	// Front is the wavefront index of a per-front operation submitted via
	// SubmitFront, or NoFront. Keeping the index out of Label lets the
	// simulator run label-formatting-free; sinks that want the classic
	// "cpu:p1:t=12" form call FullLabel.
	Front    int
	Resource Resource
	Kind     OpKind
	Start    time.Duration
	End      time.Duration
	Cells    int
	Bytes    int
}

// Duration returns the operation's occupancy on its resource.
func (r OpRecord) Duration() time.Duration { return r.End - r.Start }

// FullLabel materializes the display label, appending the ":t=<front>"
// suffix for front-tagged operations. Only trace sinks should call this;
// aggregation keys on the bare Label so all fronts of one phase group
// together.
func (r OpRecord) FullLabel() string {
	if r.Front <= NoFront {
		return r.Label
	}
	return r.Label + ":t=" + strconv.Itoa(r.Front)
}

// Timeline is the resolved schedule of a simulated execution.
type Timeline struct {
	Records    []OpRecord
	NumStreams int
	// StreamNames holds display names for stream resources, indexed by
	// stream number; empty entries fall back to "streamN".
	StreamNames []string
}

// NameOf returns the display name of a resource on this timeline: the
// fixed resource names for the built-in queues, and the registered stream
// name (when present) for extra streams.
func (t Timeline) NameOf(r Resource) string {
	if r >= numFixedResources {
		idx := int(r - numFixedResources)
		if idx < len(t.StreamNames) && t.StreamNames[idx] != "" {
			return t.StreamNames[idx]
		}
	}
	return r.String()
}

// Makespan returns the end time of the last-finishing operation.
func (t Timeline) Makespan() time.Duration {
	var m time.Duration
	for _, r := range t.Records {
		if r.End > m {
			m = r.End
		}
	}
	return m
}

// BusyTime returns the total occupied time of the given resource.
func (t Timeline) BusyTime(res Resource) time.Duration {
	var b time.Duration
	for _, r := range t.Records {
		if r.Resource == res {
			b += r.Duration()
		}
	}
	return b
}

// Utilization returns BusyTime(res)/Makespan in [0,1]. It returns 0 for an
// empty timeline.
func (t Timeline) Utilization(res Resource) float64 {
	m := t.Makespan()
	if m == 0 {
		return 0
	}
	return float64(t.BusyTime(res)) / float64(m)
}

// CellsOn returns the total number of cells computed on the resource.
func (t Timeline) CellsOn(res Resource) int {
	n := 0
	for _, r := range t.Records {
		if r.Resource == res && r.Kind == OpCompute {
			n += r.Cells
		}
	}
	return n
}

// BytesTransferred returns the total bytes moved by transfer operations,
// summed over both copy directions and any transfer op on stream resources.
func (t Timeline) BytesTransferred() int {
	n := 0
	for _, r := range t.Records {
		if r.Kind == OpTransfer {
			n += r.Bytes
		}
	}
	return n
}

// TransferCount returns the number of transfer operations.
func (t Timeline) TransferCount() int {
	n := 0
	for _, r := range t.Records {
		if r.Kind == OpTransfer {
			n++
		}
	}
	return n
}

// Resources returns the distinct resources used, sorted.
func (t Timeline) Resources() []Resource {
	seen := map[Resource]bool{}
	for _, r := range t.Records {
		seen[r.Resource] = true
	}
	out := make([]Resource, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats summarizes a timeline for reporting.
type Stats struct {
	Makespan     time.Duration
	CPUBusy      time.Duration
	GPUBusy      time.Duration
	CopyBusy     time.Duration
	CPUCells     int
	GPUCells     int
	Transfers    int
	BytesMoved   int
	CPUUtil      float64
	GPUUtil      float64
	OverlapRatio float64 // (sum of busy) / makespan; >1 means real overlap
}

// Summarize computes aggregate statistics for the timeline.
func (t Timeline) Summarize() Stats {
	s := Stats{
		Makespan:   t.Makespan(),
		CPUBusy:    t.BusyTime(ResCPU),
		GPUBusy:    t.BusyTime(ResGPU),
		CopyBusy:   t.BusyTime(ResCopyH2D) + t.BusyTime(ResCopyD2H),
		CPUCells:   t.CellsOn(ResCPU),
		GPUCells:   t.CellsOn(ResGPU),
		Transfers:  t.TransferCount(),
		BytesMoved: t.BytesTransferred(),
	}
	if s.Makespan > 0 {
		s.CPUUtil = float64(s.CPUBusy) / float64(s.Makespan)
		s.GPUUtil = float64(s.GPUBusy) / float64(s.Makespan)
		s.OverlapRatio = float64(s.CPUBusy+s.GPUBusy+s.CopyBusy) / float64(s.Makespan)
	}
	return s
}
