// Package wire implements the length-prefixed binary frame format of
// the lddpd solve service — the fast alternative to the HTTP/JSON body,
// negotiated via Accept/Content-Type (internal/server and lddp/client
// are the two sides; DESIGN.md §11 documents the layout and the
// negotiation rules).
//
// A frame is:
//
//	[1]  version byte (Version)
//	[v]  uvarint header length, then that many bytes of JSON header
//	[*]  zero or more cell chunks: uvarint count n > 0, then n cells as
//	     little-endian int64; a uvarint 0 ends the cell section
//	[*]  zero or more halo sections (band frames only): uvarint tag > 0,
//	     uvarint count, then count cells as little-endian int64; a
//	     uvarint 0 ends the section list when any section was written
//	[8]  digest trailer: little-endian FNV-1a-64 folded byte-wise over
//	     the version byte and the header JSON, then word-wise over every
//	     cell value and, for halo sections, the tag word followed by the
//	     section's cell values, in frame order
//
// The header stays JSON — it is tens of bytes and schema evolution is
// free — while the cell payload, which dominates a table response,
// travels as raw little-endian words in bounded chunks, so a receiver
// can stream cells through a fixed-size buffer instead of decoding one
// giant marshal, and a corrupted or truncated frame is caught by the
// trailer before anyone trusts the cells.
//
// Halo sections carry the edge rows/columns of the band-solve peer
// protocol (DESIGN.md §12). A frame without sections is byte-identical
// to the pre-section format — the section list exists on the wire only
// when a writer emits at least one section, and only section-aware
// readers (the /v1/band/solve endpoints) ask for them.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

const (
	// Version is the frame format version carried in the first byte.
	// Decoders refuse other versions with ErrVersion; a JSON body fed to
	// the binary decoder fails the same check ('{' is not a version we
	// will ever use).
	Version = 1

	// MediaType is the Content-Type/Accept token that selects the binary
	// frame codec. JSON remains the debuggable default.
	MediaType = "application/x-lddp-frame"

	// ChunkCells is the cell count of one wire chunk (32 KiB of payload):
	// the streaming granularity of large responses.
	ChunkCells = 4096
)

// Halo section tags of the band-solve protocol. Tag 0 is reserved as
// the section-list terminator and is never a valid section tag.
const (
	// SectionNorth: full-table row Row0-1 over the HaloSpec column span.
	SectionNorth uint64 = 1
	// SectionWest: full-table column Col0-1 over rows [Row0, Row1).
	SectionWest uint64 = 2
	// SectionEast: full-table column Col1 over rows [Row0, Row1).
	SectionEast uint64 = 3
)

// Typed decode failures, matched with errors.Is.
var (
	// ErrVersion: the frame leads with a version this decoder does not
	// speak (including non-frame bodies).
	ErrVersion = errors.New("wire: unsupported frame version")
	// ErrDigest: the digest trailer does not match the received content.
	ErrDigest = errors.New("wire: frame digest mismatch")
	// ErrFrame: the frame is structurally malformed (truncated, an
	// oversized section, varint junk).
	ErrFrame = errors.New("wire: malformed frame")
)

// FNV-1a 64-bit parameters (the digest family the service already uses
// for result digests).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// DigestInit returns the FNV-1a-64 offset basis.
func DigestInit() uint64 { return fnvOffset64 }

// DigestBytes folds p byte-wise into h.
func DigestBytes(h uint64, p []byte) uint64 {
	for _, b := range p {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return h
}

// DigestWord folds one 64-bit word into h. Word folding is 8x fewer
// multiplies than byte folding — the difference between digesting a
// 2 MB table in microseconds versus milliseconds — at the cost of being
// the word-wise FNV-1a variant rather than the byte-wise one.
func DigestWord(h, w uint64) uint64 {
	return (h ^ w) * fnvPrime64
}

// CellsDigest is the result digest of a rows x cols table with the
// given row-major cells: dimensions folded as one word, then every cell
// word-wise. internal/server renders it as the hex digest of a solve.
func CellsDigest(rows, cols int, cells []int64) uint64 {
	h := DigestWord(fnvOffset64, uint64(rows)<<32|uint64(cols))
	for _, v := range cells {
		h = DigestWord(h, uint64(v))
	}
	return h
}

// scratchPool holds the per-encoder/decoder byte scratch (one chunk of
// framing plus payload). Ownership: Get in the constructor, return in
// Close/Release; never retain across frames.
var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 10+8*ChunkCells)
		return &b
	},
}

// cellsPool holds reusable int64 cell buffers for callers that decode
// or flatten tables with bounded lifetime (see GetCells/PutCells).
var cellsPool = sync.Pool{New: func() any { return new([]int64) }}

// GetCells returns a zero-length cell buffer with capacity >= n from
// the pool. The caller owns it until PutCells; buffers that escape to a
// longer-lived owner (a cache entry, a response returned to user code)
// must simply not be returned.
func GetCells(n int) []int64 {
	p := cellsPool.Get().(*[]int64)
	if cap(*p) < n {
		*p = make([]int64, 0, n)
	}
	return (*p)[:0]
}

// PutCells returns a buffer obtained from GetCells. Oversized buffers
// are dropped instead of pinned in the pool.
func PutCells(buf []int64) {
	if cap(buf) == 0 || cap(buf) > 1<<22 {
		return
	}
	buf = buf[:0]
	p := cellsPool.Get().(*[]int64)
	*p = buf
	cellsPool.Put(p)
}

// Encoder writes one frame. Call Header once, Cells any number of
// times, then Close (which writes the end marker and digest trailer and
// returns the scratch buffer to the pool). Not safe for concurrent use.
type Encoder struct {
	w          io.Writer
	scratch    *[]byte
	h          uint64
	flush      func()
	started    bool
	closed     bool
	cellsEnded bool // the cell-section terminator has been written
	sections   bool // at least one halo section has been written
}

// NewEncoder returns an Encoder writing one frame to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w, scratch: scratchPool.Get().(*[]byte), h: fnvOffset64}
}

// SetFlush installs a hook invoked after every written cell chunk —
// the server passes http.Flusher.Flush so cells of a large table flow
// to the client chunk by chunk instead of sitting in the response
// buffer until the handler returns.
func (e *Encoder) SetFlush(f func()) { e.flush = f }

// Header marshals v as the JSON header and writes the frame prologue.
func (e *Encoder) Header(v any) error {
	if e.started {
		return errors.New("wire: Header called twice")
	}
	e.started = true
	hdr, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: encoding header: %w", err)
	}
	b := (*e.scratch)[:0]
	b = append(b, Version)
	b = binary.AppendUvarint(b, uint64(len(hdr)))
	b = append(b, hdr...)
	*e.scratch = b
	e.h = DigestBytes(e.h, b[:1])
	e.h = DigestBytes(e.h, hdr)
	return e.writeAll(b)
}

// Cells writes the given cells, split into wire chunks of at most
// ChunkCells. The slice is only read; the caller keeps ownership.
func (e *Encoder) Cells(cells []int64) error {
	if !e.started || e.closed {
		return errors.New("wire: Cells outside Header..Close")
	}
	if e.cellsEnded {
		return errors.New("wire: Cells after a halo section")
	}
	for len(cells) > 0 {
		n := len(cells)
		if n > ChunkCells {
			n = ChunkCells
		}
		b := (*e.scratch)[:0]
		b = binary.AppendUvarint(b, uint64(n))
		for _, v := range cells[:n] {
			w := uint64(v)
			b = binary.LittleEndian.AppendUint64(b, w)
			e.h = DigestWord(e.h, w)
		}
		*e.scratch = b
		if err := e.writeAll(b); err != nil {
			return err
		}
		if e.flush != nil {
			e.flush()
		}
		cells = cells[n:]
	}
	return nil
}

// Section writes one tagged halo section (tag > 0): the section list
// sits between the cell section and the digest trailer, so Section must
// come after any Cells calls. The tag word and the cell values fold
// into the frame digest; the slice is only read.
func (e *Encoder) Section(tag uint64, cells []int64) error {
	if !e.started || e.closed {
		return errors.New("wire: Section outside Header..Close")
	}
	if tag == 0 {
		return errors.New("wire: section tag 0 is the list terminator")
	}
	b := (*e.scratch)[:0]
	if !e.cellsEnded {
		// First section: close the (possibly empty) cell section.
		e.cellsEnded = true
		b = binary.AppendUvarint(b, 0)
	}
	e.sections = true
	b = binary.AppendUvarint(b, tag)
	b = binary.AppendUvarint(b, uint64(len(cells)))
	e.h = DigestWord(e.h, tag)
	for _, v := range cells {
		w := uint64(v)
		b = binary.LittleEndian.AppendUint64(b, w)
		e.h = DigestWord(e.h, w)
	}
	*e.scratch = b
	return e.writeAll(b)
}

// BeginSections closes the (possibly empty) cell section and marks the
// frame as carrying a section list, so Close writes the section
// terminator even when no Section call follows. Writers of band frames
// call it unconditionally: the reader of a band frame always drains the
// section list, and a section list must exist — possibly empty — for
// the frame to parse. Idempotent once any section has been written.
func (e *Encoder) BeginSections() error {
	if !e.started || e.closed {
		return errors.New("wire: BeginSections outside Header..Close")
	}
	if !e.cellsEnded {
		e.cellsEnded = true
		b := binary.AppendUvarint((*e.scratch)[:0], 0)
		*e.scratch = b
		if err := e.writeAll(b); err != nil {
			return err
		}
	}
	e.sections = true
	return nil
}

// Close writes the end-of-cells marker (and, when halo sections were
// written, the end-of-sections marker) and the digest trailer, then
// releases the encoder's scratch. Safe to call once.
func (e *Encoder) Close() error {
	if e.closed {
		return errors.New("wire: Close called twice")
	}
	if !e.started {
		return errors.New("wire: Close before Header")
	}
	e.closed = true
	b := (*e.scratch)[:0]
	if !e.cellsEnded {
		b = binary.AppendUvarint(b, 0)
	}
	if e.sections {
		b = binary.AppendUvarint(b, 0)
	}
	b = binary.LittleEndian.AppendUint64(b, e.h)
	*e.scratch = b
	err := e.writeAll(b)
	scratchPool.Put(e.scratch)
	e.scratch = nil
	return err
}

// Abort releases the encoder's scratch without writing the end marker
// or digest trailer — for callers whose frame failed mid-write (a
// header marshal error, a broken connection) and must not emit more
// bytes into the stream. Safe to call once; Close after Abort errors.
func (e *Encoder) Abort() {
	if e.closed {
		return
	}
	e.closed = true
	if e.scratch != nil {
		scratchPool.Put(e.scratch)
		e.scratch = nil
	}
}

func (e *Encoder) writeAll(p []byte) error {
	if _, err := e.w.Write(p); err != nil {
		return fmt.Errorf("wire: writing frame: %w", err)
	}
	return nil
}

// Decoder reads one frame. Call Header, then Cells, then Close (which
// verifies the digest trailer); Release returns the scratch to the pool
// and must run exactly once, after the decoder is done (error paths
// included). Not safe for concurrent use.
type Decoder struct {
	r         io.Reader
	scratch   *[]byte
	h         uint64
	maxHeader int
	maxCells  int64
	total     int64   // cells consumed so far (cell section + halo sections)
	state     int     // 0 fresh, 1 header read, 2 cells read, 3 closed
	secEnded  bool    // the section-list terminator has been consumed
	one       [1]byte // readByte scratch; a local would escape per call
}

// NewDecoder returns a Decoder reading one frame from r, with default
// caps (1 MiB header, 1<<22 cells) the caller can tighten.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{
		r:         r,
		scratch:   scratchPool.Get().(*[]byte),
		h:         fnvOffset64,
		maxHeader: 1 << 20,
		maxCells:  1 << 22,
	}
}

// SetMaxHeaderBytes caps the header section; a frame declaring a longer
// header fails with ErrFrame before any allocation.
func (d *Decoder) SetMaxHeaderBytes(n int) { d.maxHeader = n }

// SetMaxCells caps the total cell count across all chunks.
func (d *Decoder) SetMaxCells(n int64) { d.maxCells = n }

// Release returns the decoder's scratch buffer to the pool.
func (d *Decoder) Release() {
	if d.scratch != nil {
		scratchPool.Put(d.scratch)
		d.scratch = nil
	}
}

// byteReader adapts the decoder's reader for binary.ReadUvarint without
// requiring the caller to hand in a bufio.Reader.
func (d *Decoder) readByte() (byte, error) {
	if _, err := io.ReadFull(d.r, d.one[:]); err != nil {
		return 0, err
	}
	return d.one[0], nil
}

func (d *Decoder) readUvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := d.readByte()
		if err != nil {
			return 0, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, fmt.Errorf("%w: varint overflows 64 bits", ErrFrame)
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, fmt.Errorf("%w: varint overflows 64 bits", ErrFrame)
}

// Header reads the version byte and the JSON header, returning the raw
// header bytes (a fresh allocation the caller owns) for the caller to
// unmarshal under its own strictness rules.
func (d *Decoder) Header() ([]byte, error) {
	if d.state != 0 {
		return nil, errors.New("wire: Header called twice")
	}
	d.state = 1
	ver, err := d.readByte()
	if err != nil {
		return nil, fmt.Errorf("%w: missing version byte", ErrFrame)
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, ver, Version)
	}
	n, err := d.readUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: reading header length: %v", ErrFrame, err)
	}
	if n > uint64(d.maxHeader) {
		return nil, fmt.Errorf("%w: header of %d bytes exceeds the %d-byte cap", ErrFrame, n, d.maxHeader)
	}
	hdr := make([]byte, n)
	if _, err := io.ReadFull(d.r, hdr); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrFrame, err)
	}
	d.h = DigestBytes(d.h, []byte{ver})
	d.h = DigestBytes(d.h, hdr)
	return hdr, nil
}

// Cells reads every cell chunk up to the end marker, appending onto dst
// (pass a pooled or preallocated buffer to avoid growth) and returning
// the extended slice.
func (d *Decoder) Cells(dst []int64) ([]int64, error) {
	if d.state != 1 {
		return dst, errors.New("wire: Cells outside Header..Close")
	}
	d.state = 2
	for {
		n, err := d.readUvarint()
		if err != nil {
			return dst, fmt.Errorf("%w: reading chunk count: %v", ErrFrame, err)
		}
		if n == 0 {
			return dst, nil
		}
		dst, err = d.readCellRun(dst, n, "cell chunk")
		if err != nil {
			return dst, err
		}
	}
}

// readCellRun consumes n cells against the shared cell budget, folding
// each into the digest and appending onto dst.
func (d *Decoder) readCellRun(dst []int64, n uint64, what string) ([]int64, error) {
	// The count is untrusted: compare in unsigned space first, so a
	// count near 2^64 cannot wrap a signed sum past the cap. After the
	// first two checks, n fits in int64 and total <= maxCells holds, so
	// the subtraction cannot overflow.
	if d.maxCells < 0 || n > uint64(d.maxCells) || int64(n) > d.maxCells-d.total {
		return dst, fmt.Errorf("%w: cell payload exceeds the %d-cell cap", ErrFrame, d.maxCells)
	}
	d.total += int64(n)
	buf := (*d.scratch)[:cap(*d.scratch)]
	for n > 0 {
		c := uint64(len(buf) / 8)
		if c > n {
			c = n
		}
		p := buf[:c*8]
		if _, err := io.ReadFull(d.r, p); err != nil {
			return dst, fmt.Errorf("%w: truncated %s: %v", ErrFrame, what, err)
		}
		for i := uint64(0); i < c; i++ {
			w := binary.LittleEndian.Uint64(p[i*8:])
			d.h = DigestWord(d.h, w)
			dst = append(dst, int64(w))
		}
		n -= c
	}
	return dst, nil
}

// Section reads the next halo section, appending its cells onto dst and
// returning the section tag; tag 0 means the section list has ended
// (the terminator is consumed) and Close may follow. Call only between
// Cells and Close, and only on frames whose writer emits sections — on
// a plain frame the first Section call consumes the digest trailer as
// junk and fails with ErrFrame or a digest mismatch at Close.
func (d *Decoder) Section(dst []int64) (uint64, []int64, error) {
	if d.state != 2 {
		return 0, dst, errors.New("wire: Section outside Cells..Close")
	}
	if d.secEnded {
		return 0, dst, nil
	}
	tag, err := d.readUvarint()
	if err != nil {
		return 0, dst, fmt.Errorf("%w: reading section tag: %v", ErrFrame, err)
	}
	if tag == 0 {
		d.secEnded = true
		return 0, dst, nil
	}
	n, err := d.readUvarint()
	if err != nil {
		return 0, dst, fmt.Errorf("%w: reading section count: %v", ErrFrame, err)
	}
	d.h = DigestWord(d.h, tag)
	dst, err = d.readCellRun(dst, n, "halo section")
	if err != nil {
		return 0, dst, err
	}
	return tag, dst, nil
}

// Close reads and verifies the digest trailer.
func (d *Decoder) Close() error {
	if d.state != 2 {
		return errors.New("wire: Close outside Cells..")
	}
	d.state = 3
	var tr [8]byte
	if _, err := io.ReadFull(d.r, tr[:]); err != nil {
		return fmt.Errorf("%w: truncated digest trailer: %v", ErrFrame, err)
	}
	if got := binary.LittleEndian.Uint64(tr[:]); got != d.h {
		return fmt.Errorf("%w: got %016x, computed %016x", ErrDigest, got, d.h)
	}
	return nil
}
