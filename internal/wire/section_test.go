package wire

import (
	"bytes"
	"errors"
	"testing"
)

// encodeHaloFrame builds one band-style frame: header, cells, then the
// given halo sections in order.
func encodeHaloFrame(t testing.TB, hdr any, cells []int64, sections map[uint64][]int64, order []uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := e.Header(hdr); err != nil {
		t.Fatal(err)
	}
	if cells != nil {
		if err := e.Cells(cells); err != nil {
			t.Fatal(err)
		}
	}
	for _, tag := range order {
		if err := e.Section(tag, sections[tag]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeSections drains the section list into a tag->cells map.
func decodeSections(t testing.TB, d *Decoder) map[uint64][]int64 {
	t.Helper()
	out := map[uint64][]int64{}
	for {
		tag, cells, err := d.Section(nil)
		if err != nil {
			t.Fatal(err)
		}
		if tag == 0 {
			return out
		}
		out[tag] = cells
	}
}

func TestSectionRoundTrip(t *testing.T) {
	north := []int64{1, -2, 3, 4}
	west := []int64{-9, 8}
	east := []int64{7}
	frame := encodeHaloFrame(t, testHeader{Name: "halo", N: 3},
		[]int64{10, 20, 30},
		map[uint64][]int64{SectionNorth: north, SectionWest: west, SectionEast: east},
		[]uint64{SectionNorth, SectionWest, SectionEast})

	d := NewDecoder(bytes.NewReader(frame))
	defer d.Release()
	if _, err := d.Header(); err != nil {
		t.Fatal(err)
	}
	cells, err := d.Cells(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 || cells[2] != 30 {
		t.Fatalf("cells = %v", cells)
	}
	got := decodeSections(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	for tag, want := range map[uint64][]int64{SectionNorth: north, SectionWest: west, SectionEast: east} {
		g := got[tag]
		if len(g) != len(want) {
			t.Fatalf("tag %d: %v, want %v", tag, g, want)
		}
		for i := range want {
			if g[i] != want[i] {
				t.Fatalf("tag %d cell %d: %d, want %d", tag, i, g[i], want[i])
			}
		}
	}
}

// TestSectionEmptyCells pins the empty-cell-section band request shape:
// sections directly after the header, no Cells call at all.
func TestSectionEmptyCells(t *testing.T) {
	frame := encodeHaloFrame(t, testHeader{Name: "req"}, nil,
		map[uint64][]int64{SectionNorth: {5, 6}}, []uint64{SectionNorth})
	d := NewDecoder(bytes.NewReader(frame))
	defer d.Release()
	if _, err := d.Header(); err != nil {
		t.Fatal(err)
	}
	cells, err := d.Cells(nil)
	if err != nil || len(cells) != 0 {
		t.Fatalf("cells = %v, err %v", cells, err)
	}
	got := decodeSections(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[SectionNorth]) != 2 {
		t.Fatalf("sections = %v", got)
	}
}

// TestPlainFrameUnchanged: a frame without sections must be
// byte-identical to the pre-section format — the encoder adds no
// terminator, and old-style decode (Cells then Close) succeeds.
func TestPlainFrameUnchanged(t *testing.T) {
	cells := []int64{4, 5, 6}
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := e.Header(testHeader{Name: "plain"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Cells(cells); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Reconstruct the legacy layout by hand: version, varint len, header
	// JSON, one chunk, terminator, digest.
	hdr := []byte(`{"name":"plain","n":0}`)
	var want bytes.Buffer
	want.WriteByte(Version)
	want.WriteByte(byte(len(hdr)))
	want.Write(hdr)
	want.WriteByte(3)
	h := DigestBytes(DigestBytes(DigestInit(), []byte{Version}), hdr)
	for _, v := range cells {
		var le [8]byte
		for i := 0; i < 8; i++ {
			le[i] = byte(uint64(v) >> (8 * i))
		}
		want.Write(le[:])
		h = DigestWord(h, uint64(v))
	}
	want.WriteByte(0)
	var tr [8]byte
	for i := 0; i < 8; i++ {
		tr[i] = byte(h >> (8 * i))
	}
	want.Write(tr[:])
	if !bytes.Equal(buf.Bytes(), want.Bytes()) {
		t.Fatalf("plain frame drifted:\n got %x\nwant %x", buf.Bytes(), want.Bytes())
	}
}

// TestSectionDigestCoversTag: swapping two same-length sections' tags
// changes the digest, so a relay cannot silently relabel a halo.
func TestSectionDigestCoversTag(t *testing.T) {
	frame := encodeHaloFrame(t, testHeader{}, nil,
		map[uint64][]int64{SectionNorth: {1, 2}}, []uint64{SectionNorth})
	// Find and flip the tag byte (first byte after the cell terminator).
	// Layout: 1 version + 1 hdrlen + hdr + 1 cell-term, then tag; the
	// header is short enough that its uvarint length is a single byte.
	i := 2 + int(frame[1]) + 1
	if frame[i] != byte(SectionNorth) {
		t.Fatalf("frame[%d] = %d, want tag %d", i, frame[i], SectionNorth)
	}
	frame[i] = byte(SectionWest)
	d := NewDecoder(bytes.NewReader(frame))
	defer d.Release()
	if _, err := d.Header(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Cells(nil); err != nil {
		t.Fatal(err)
	}
	for {
		tag, _, err := d.Section(nil)
		if err != nil {
			t.Fatal(err)
		}
		if tag == 0 {
			break
		}
	}
	if err := d.Close(); !errors.Is(err, ErrDigest) {
		t.Fatalf("got %v, want ErrDigest after tag swap", err)
	}
}

// TestSectionCapSharedWithCells: halo cells draw down the same budget
// as the cell section, so a frame cannot smuggle an oversized payload
// through sections.
func TestSectionCapSharedWithCells(t *testing.T) {
	frame := encodeHaloFrame(t, testHeader{}, make([]int64, 40),
		map[uint64][]int64{SectionNorth: make([]int64, 20)}, []uint64{SectionNorth})
	d := NewDecoder(bytes.NewReader(frame))
	defer d.Release()
	d.SetMaxCells(50)
	if _, err := d.Header(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Cells(nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Section(nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("got %v, want ErrFrame when sections exceed the shared cap", err)
	}
}

func TestSectionOrderingErrors(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := e.Section(SectionNorth, nil); err == nil {
		t.Fatal("Section before Header succeeded")
	}
	if err := e.Header(testHeader{}); err != nil {
		t.Fatal(err)
	}
	if err := e.Section(0, nil); err == nil {
		t.Fatal("Section(0) succeeded")
	}
	if err := e.Section(SectionNorth, []int64{1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Cells([]int64{1}); err == nil {
		t.Fatal("Cells after Section succeeded")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkHaloEncodeDecode is the halo-frame analogue of the
// EncodeDecode codec benchmark: one band request frame (header + three
// halo sections over pooled buffers), encode + full decode. Gated by
// benchjson -assert in make bench-wire / CI.
func BenchmarkHaloEncodeDecode2048(b *testing.B) {
	north := make([]int64, 2048)
	west := make([]int64, 1024)
	east := make([]int64, 1024)
	for i := range north {
		north[i] = int64(i) * 7
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		e := NewEncoder(&buf)
		if err := e.Header(testHeader{Name: "halo"}); err != nil {
			b.Fatal(err)
		}
		if err := e.Section(SectionNorth, north); err != nil {
			b.Fatal(err)
		}
		if err := e.Section(SectionWest, west); err != nil {
			b.Fatal(err)
		}
		if err := e.Section(SectionEast, east); err != nil {
			b.Fatal(err)
		}
		if err := e.Close(); err != nil {
			b.Fatal(err)
		}
		d := NewDecoder(bytes.NewReader(buf.Bytes()))
		if _, err := d.Header(); err != nil {
			b.Fatal(err)
		}
		got, err := d.Cells(GetCells(0))
		if err != nil {
			b.Fatal(err)
		}
		for {
			tag, g, err := d.Section(got)
			if err != nil {
				b.Fatal(err)
			}
			got = g
			if tag == 0 {
				break
			}
		}
		if err := d.Close(); err != nil {
			b.Fatal(err)
		}
		d.Release()
		PutCells(got)
	}
}
