package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

type testHeader struct {
	Name string `json:"name"`
	N    int    `json:"n"`
}

// encodeFrame builds one complete frame for the decode tests.
func encodeFrame(t *testing.T, hdr any, cells []int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := e.Header(hdr); err != nil {
		t.Fatal(err)
	}
	if err := e.Cells(cells); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeFrame runs the full decode sequence, returning header bytes and
// cells; any stage error is returned.
func decodeFrame(r io.Reader) (hdr []byte, cells []int64, err error) {
	d := NewDecoder(r)
	defer d.Release()
	hdr, err = d.Header()
	if err != nil {
		return nil, nil, err
	}
	cells, err = d.Cells(nil)
	if err != nil {
		return nil, nil, err
	}
	if err := d.Close(); err != nil {
		return nil, nil, err
	}
	return hdr, cells, nil
}

func TestRoundTrip(t *testing.T) {
	sizes := []int{0, 1, 7, ChunkCells - 1, ChunkCells, ChunkCells + 1, 3*ChunkCells + 5}
	for _, n := range sizes {
		cells := make([]int64, n)
		for i := range cells {
			cells[i] = int64(i)*-7046029254386353131 + 13
		}
		frame := encodeFrame(t, testHeader{Name: "rt", N: n}, cells)
		hdr, got, err := decodeFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if want := `{"name":"rt","n":` + itoa(n) + `}`; string(hdr) != want {
			t.Fatalf("n=%d: header %q, want %q", n, hdr, want)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d cells", n, len(got))
		}
		for i := range got {
			if got[i] != cells[i] {
				t.Fatalf("n=%d: cell %d = %d, want %d", n, i, got[i], cells[i])
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestCellsStreamInChunks checks that a multi-chunk payload arrives as
// several bounded writes — the property the server's streaming flush
// hangs off — and that the flush hook fires once per chunk.
func TestCellsStreamInChunks(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	flushes := 0
	e.SetFlush(func() { flushes++ })
	if err := e.Header(testHeader{}); err != nil {
		t.Fatal(err)
	}
	if err := e.Cells(make([]int64, 2*ChunkCells+10)); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if flushes != 3 {
		t.Fatalf("flush hook fired %d times, want 3", flushes)
	}
	if _, cells, err := decodeFrame(bytes.NewReader(buf.Bytes())); err != nil || len(cells) != 2*ChunkCells+10 {
		t.Fatalf("round trip: %d cells, err %v", len(cells), err)
	}
}

func TestVersionMismatch(t *testing.T) {
	frame := encodeFrame(t, testHeader{}, nil)
	frame[0] = 2
	if _, _, err := decodeFrame(bytes.NewReader(frame)); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
	// A JSON body handed to the binary decoder is a version error too:
	// '{' is not a version byte we will ever assign.
	if _, _, err := decodeFrame(bytes.NewReader([]byte(`{"rows":1}`))); !errors.Is(err, ErrVersion) {
		t.Fatalf("JSON body: got %v, want ErrVersion", err)
	}
}

func TestDigestMismatch(t *testing.T) {
	frame := encodeFrame(t, testHeader{Name: "x"}, []int64{1, 2, 3})
	// Flip one bit inside the cell payload; the trailer must catch it.
	frame[len(frame)-12] ^= 0x40
	if _, _, err := decodeFrame(bytes.NewReader(frame)); !errors.Is(err, ErrDigest) {
		t.Fatalf("got %v, want ErrDigest", err)
	}
}

func TestTruncated(t *testing.T) {
	frame := encodeFrame(t, testHeader{Name: "trunc"}, []int64{9, 8, 7, 6})
	for cut := 0; cut < len(frame); cut++ {
		_, _, err := decodeFrame(bytes.NewReader(frame[:cut]))
		if err == nil {
			t.Fatalf("cut=%d: truncated frame decoded cleanly", cut)
		}
		if !errors.Is(err, ErrFrame) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrDigest) {
			t.Fatalf("cut=%d: untyped error %v", cut, err)
		}
	}
}

func TestHeaderCap(t *testing.T) {
	big := make([]byte, 64)
	frame := encodeFrame(t, testHeader{Name: string(big)}, nil)
	d := NewDecoder(bytes.NewReader(frame))
	defer d.Release()
	d.SetMaxHeaderBytes(16)
	if _, err := d.Header(); !errors.Is(err, ErrFrame) {
		t.Fatalf("got %v, want ErrFrame for oversized header", err)
	}
}

func TestCellsCap(t *testing.T) {
	frame := encodeFrame(t, testHeader{}, make([]int64, 100))
	d := NewDecoder(bytes.NewReader(frame))
	defer d.Release()
	if _, err := d.Header(); err != nil {
		t.Fatal(err)
	}
	d.SetMaxCells(50)
	if _, err := d.Cells(nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("got %v, want ErrFrame for oversized cell payload", err)
	}
}

// TestHugeDeclaredChunk feeds a frame whose chunk count claims 2^40
// cells: the decoder must refuse on the cap before allocating or
// reading anything of that size.
func TestHugeDeclaredChunk(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(Version)
	buf.WriteByte(2) // header length
	buf.WriteString("{}")
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], 1<<40)])
	d := NewDecoder(&buf)
	defer d.Release()
	if _, err := d.Header(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Cells(nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("got %v, want ErrFrame for huge declared chunk", err)
	}
}

// TestChunkCountOverflowBypass crafts the signed-wrap attack: after one
// legitimate cell (total=1), a chunk count of 2^64-1 converts to
// int64(-1), so a signed total+int64(n) sums to 0 and would slip under
// the cap — the decoder must compare in unsigned space and refuse.
func TestChunkCountOverflowBypass(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(Version)
	buf.WriteByte(2) // header length
	buf.WriteString("{}")
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], 1)]) // one honest chunk...
	buf.Write(make([]byte, 8))                    // ...of one cell
	buf.Write(tmp[:binary.PutUvarint(tmp[:], ^uint64(0))])
	// Enough payload for several full scratch-sized reads: a decoder that
	// trusts the wrapped count consumes all of it as cells.
	buf.Write(make([]byte, 128<<10))
	d := NewDecoder(&buf)
	defer d.Release()
	d.SetMaxCells(16)
	if _, err := d.Header(); err != nil {
		t.Fatal(err)
	}
	cells, err := d.Cells(nil)
	if !errors.Is(err, ErrFrame) {
		t.Fatalf("got %v, want ErrFrame for wrapping chunk count", err)
	}
	if len(cells) > 16 {
		t.Fatalf("decoder appended %d cells past the 16-cell cap", len(cells))
	}
}

// TestEncoderAbort pins the failed-header contract: a frame whose
// header never made it out must not be capped with an end marker and
// digest trailer — the receiver should see nothing, not a stray 0x00
// it would misread as a bogus version byte.
func TestEncoderAbort(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Header(make(chan int)); err == nil {
		t.Fatal("Header(chan) marshalled")
	}
	enc.Abort()
	if buf.Len() != 0 {
		t.Fatalf("aborted encoder wrote %d bytes: %x", buf.Len(), buf.Bytes())
	}
	if err := enc.Close(); err == nil {
		t.Fatal("Close after Abort succeeded")
	}
	if buf.Len() != 0 {
		t.Fatalf("Close after Abort wrote %d bytes", buf.Len())
	}
	enc.Abort() // idempotent
}

func TestVarintJunk(t *testing.T) {
	// 10 continuation bytes: an unterminated/overflowing varint where the
	// header length belongs.
	junk := append([]byte{Version}, bytes.Repeat([]byte{0xff}, 10)...)
	if _, _, err := decodeFrame(bytes.NewReader(junk)); !errors.Is(err, ErrFrame) {
		t.Fatalf("got %v, want ErrFrame for varint junk", err)
	}
}

func TestCellsDigestMatchesTrailerFamily(t *testing.T) {
	// The result digest and the frame trailer share the word-fold; a
	// change to one that forgets the other would break the e2e equality
	// witness, so pin the algebra with a tiny known case.
	basis, prime := DigestInit(), uint64(fnvPrime64)
	h := DigestWord(DigestInit(), 42)
	if want := (basis ^ 42) * prime; h != want {
		t.Fatalf("DigestWord: got %x, want %x", h, want)
	}
	if CellsDigest(1, 2, []int64{5, -5}) == CellsDigest(2, 1, []int64{5, -5}) {
		t.Fatal("CellsDigest ignores dimensions")
	}
}

func TestCellBufferPool(t *testing.T) {
	b := GetCells(100)
	if len(b) != 0 || cap(b) < 100 {
		t.Fatalf("GetCells(100): len %d cap %d", len(b), cap(b))
	}
	b = append(b, 1, 2, 3)
	PutCells(b)
	b2 := GetCells(10)
	if len(b2) != 0 {
		t.Fatalf("pooled buffer came back with len %d", len(b2))
	}
}

func BenchmarkEncodeDecode512x512(b *testing.B) {
	cells := make([]int64, 512*512)
	for i := range cells {
		cells[i] = int64(i)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		e := NewEncoder(&buf)
		if err := e.Header(testHeader{Name: "bench"}); err != nil {
			b.Fatal(err)
		}
		if err := e.Cells(cells); err != nil {
			b.Fatal(err)
		}
		if err := e.Close(); err != nil {
			b.Fatal(err)
		}
		d := NewDecoder(bytes.NewReader(buf.Bytes()))
		if _, err := d.Header(); err != nil {
			b.Fatal(err)
		}
		got := GetCells(len(cells))
		var err error
		if got, err = d.Cells(got); err != nil {
			b.Fatal(err)
		}
		if err := d.Close(); err != nil {
			b.Fatal(err)
		}
		d.Release()
		PutCells(got)
	}
}
