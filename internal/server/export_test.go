package server

// AcquireInflightForTest occupies one in-flight limiter slot and returns
// its release, letting tests hit the 429 path deterministically instead
// of racing real solves against the limiter.
func (s *Server) AcquireInflightForTest() func() {
	s.inflight <- struct{}{}
	return func() { <-s.inflight }
}
