//go:build soak

package server_test

import "testing"

// TestServerDrainSoakLong is the extended drain soak, opt-in via
// -tags soak: hundreds of randomized requests with client-side cancels
// and mid-batch drains, meant to run under -race. Same invariants as the
// short soak, more exposure.
func TestServerDrainSoakLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak skipped in -short mode")
	}
	for seed := int64(2); seed < 5; seed++ {
		runDrainSoak(t, 200, 96, seed)
	}
}
