package server

import (
	"container/list"
	"sync"

	"repro/internal/wire"
	"repro/lddp"
	"repro/lddp/api"
)

// DefaultCacheBytes bounds the result cache when Config.CacheBytes is
// zero: enough for a few dozen mid-size tables without letting repeated
// large solves crowd out the heap.
const DefaultCacheBytes = 64 << 20

// cacheEntryOverhead is the accounting cost of one entry beyond its
// cell payload (key, list element, map slot, strings).
const cacheEntryOverhead = 256

// cacheKey identifies one deterministic solve. Server workloads are
// declarative — (kind, seed, shape) rebuild the identical instance — so
// the key is the workload tuple plus everything else that reaches the
// executor: the dependency mask, the strategy, and the chunk override.
// Inline cost payloads are content-addressed through their digest, so
// two different grids with the same shape never collide, and the kind
// string keeps equal seeds of different generators apart.
type cacheKey struct {
	kind       string
	seed       int64
	rows, cols int
	mask       lddp.DepMask
	strategy   string
	chunk      int
	// inlineDigest is the word-FNV digest of the inline cost cells;
	// hasInline separates "no payload" from a payload digesting to zero.
	inlineDigest uint64
	hasInline    bool
}

// cacheEntry is one cached result: the row-major cells (owning the
// grid's backing slice — nothing mutates a result grid after Wait), the
// rendered digest, and the response echo fields.
type cacheEntry struct {
	key     cacheKey
	id      int64
	cells   []int64
	digest  string
	pattern string
	mask    string
	bytes   int64
}

// resultCache is a bounded, size-aware LRU over solve results. All
// methods are safe for concurrent use; a nil *resultCache (cache
// disabled) answers every lookup with a miss and drops every store.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recent; values are *cacheEntry
	index    map[cacheKey]*list.Element

	hits, misses, bypasses, stores, evictions int64
}

// newResultCache returns a cache bounded to maxBytes of cell payload
// (plus per-entry overhead); maxBytes <= 0 returns nil (disabled).
func newResultCache(maxBytes int64) *resultCache {
	if maxBytes <= 0 {
		return nil
	}
	return &resultCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		index:    make(map[cacheKey]*list.Element),
	}
}

// keyForRequest builds the cache key of a validated request whose
// problem has been built (deps is the problem's normalized mask).
func keyForRequest(req *api.SolveRequest, deps lddp.DepMask) cacheKey {
	k := cacheKey{
		kind:     req.Workload.Kind,
		seed:     req.Workload.Seed,
		rows:     req.Rows,
		cols:     req.Cols,
		mask:     deps,
		strategy: req.Strategy,
		chunk:    req.Chunk,
	}
	if k.kind == "" {
		k.kind = api.KindMix
	}
	if k.strategy == "" {
		k.strategy = "auto"
	}
	if req.Workload.Cells != nil {
		h := wire.DigestInit()
		for _, row := range req.Workload.Cells {
			for _, v := range row {
				h = wire.DigestWord(h, uint64(v))
			}
		}
		k.inlineDigest = h
		k.hasInline = true
	}
	return k
}

// get returns the entry under k, promoting it to most-recent; nil on a
// miss. The returned entry is shared and must be treated read-only.
func (c *resultCache) get(k cacheKey) *cacheEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[k]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

// bypass records a lookup skipped under Cache-Control: no-cache.
func (c *resultCache) bypass() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.bypasses++
	c.mu.Unlock()
}

// put inserts (or refreshes) an entry and evicts from the LRU tail
// until the cache fits its bound again. Entries larger than half the
// bound are not stored at all: one giant table must not wipe the cache.
func (c *resultCache) put(e *cacheEntry) {
	if c == nil {
		return
	}
	e.bytes = int64(len(e.cells))*8 + cacheEntryOverhead
	if e.bytes > c.maxBytes/2 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[e.key]; ok {
		// A concurrent solve of the same key got here first; keep the
		// incumbent (the results are identical by construction).
		c.ll.MoveToFront(el)
		return
	}
	c.index[e.key] = c.ll.PushFront(e)
	c.bytes += e.bytes
	c.stores++
	for c.bytes > c.maxBytes {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.index, victim.key)
		c.bytes -= victim.bytes
		c.evictions++
	}
}

// stats renders the counters as the metrics-snapshot section.
func (c *resultCache) stats() lddp.CacheSnapshot {
	if c == nil {
		return lddp.CacheSnapshot{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return lddp.CacheSnapshot{
		Hits:          c.hits,
		Misses:        c.misses,
		Bypasses:      c.bypasses,
		Stores:        c.stores,
		Evictions:     c.evictions,
		Entries:       c.ll.Len(),
		Bytes:         c.bytes,
		CapacityBytes: c.maxBytes,
	}
}
