// Observability surface tests: the Prometheus exposition of
// /v1/metrics (validated by the strict internal/promlint checker),
// concurrent scrapes racing active solves, and the /v1/trace/{fleetID}
// collection endpoint that the fleet coordinator stitches from.
package server_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/promlint"
	"repro/internal/server"
	"repro/lddp/api"
	"repro/lddp/client"
)

// scrapeProm fetches /v1/metrics?format=prometheus and returns the body.
func scrapeProm(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prometheus scrape: Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// promValue extracts the value of an unlabeled sample line.
func promValue(t *testing.T, doc, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(doc, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("sample %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("sample %s not in exposition", name)
	return 0
}

func TestPrometheusExposition(t *testing.T) {
	_, ts, c := newTestService(t, server.Config{Workers: 2})
	if _, err := c.Solve(context.Background(), &client.SolveRequest{Rows: 16, Cols: 16, Mask: "W,N"}); err != nil {
		t.Fatal(err)
	}
	doc := scrapeProm(t, ts.URL)

	res, err := promlint.Lint(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatalf("exposition fails lint:\n%v", err)
	}
	// Every family is emitted even at zero, so a scraper can difference
	// counters from the first scrape on; spot-check the family set.
	for _, fam := range []string{
		"lddpd_solves_total", "lddpd_solve_errors_total",
		"lddpd_sched_submitted_total", "lddpd_sched_queue_wait_seconds",
		"lddpd_sched_solve_latency_seconds",
		"lddpd_cache_hits_total", "lddpd_cache_bytes",
		"lddpd_wire_requests_total", "lddpd_wire_request_bytes_total",
		"lddpd_halo_values_total",
		"lddpd_inflight_solves", "lddpd_draining",
		"lddpd_trace_dropped_events_total", "lddpd_fleet_solves_total",
	} {
		if _, ok := res.Families[fam]; !ok {
			t.Errorf("family %s missing from exposition", fam)
		}
	}
	if v := promValue(t, doc, "lddpd_solves_total"); v < 1 {
		t.Errorf("lddpd_solves_total = %v after a solve, want >= 1", v)
	}
	if v := promValue(t, doc, "lddpd_sched_solve_latency_seconds_count"); v < 1 {
		t.Errorf("solve latency histogram empty after a solve: count=%v", v)
	}
	if v := promValue(t, doc, "lddpd_sched_queue_wait_seconds_count"); v < 1 {
		t.Errorf("queue wait histogram empty after a solve: count=%v", v)
	}
	// Request/response byte counters ride the HTTP wrappers.
	if v := promValue(t, doc, "lddpd_wire_request_bytes_total"); v <= 0 {
		t.Errorf("lddpd_wire_request_bytes_total = %v, want > 0", v)
	}
	if v := promValue(t, doc, "lddpd_wire_response_bytes_total"); v <= 0 {
		t.Errorf("lddpd_wire_response_bytes_total = %v, want > 0", v)
	}
}

// TestMetricsConcurrentScrapes hammers /v1/metrics in both formats
// while solves are actively running: every scrape must return a
// complete, lint-clean document, and the run must be race-clean under
// -race. This is the scrape-during-load contract a Prometheus server
// exercises in production.
func TestMetricsConcurrentScrapes(t *testing.T) {
	_, ts, c := newTestService(t, server.Config{Workers: 4})
	const solvers, solvesEach, scrapers = 3, 5, 3

	var solveWG, scrapeWG sync.WaitGroup
	done := make(chan struct{})
	errc := make(chan error, solvers+2*scrapers)

	for s := 0; s < solvers; s++ {
		solveWG.Add(1)
		go func(seed int) {
			defer solveWG.Done()
			for i := 0; i < solvesEach; i++ {
				_, err := c.Solve(context.Background(), &client.SolveRequest{
					Rows: 64, Cols: 64, Mask: "W,N",
					Workload: client.WorkloadSpec{Kind: client.KindMix, Seed: int64(seed*100 + i)},
				})
				if err != nil {
					errc <- fmt.Errorf("solver %d: %w", seed, err)
					return
				}
			}
		}(s)
	}
	for s := 0; s < scrapers; s++ {
		scrapeWG.Add(2)
		// JSON scraper: the snapshot must always decode.
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := c.Metrics(context.Background()); err != nil {
					errc <- fmt.Errorf("json scrape: %w", err)
					return
				}
			}
		}()
		// Prometheus scraper: every body must lint clean — a torn or
		// inconsistent exposition under load is a bug.
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/metrics?format=prometheus")
				if err != nil {
					errc <- fmt.Errorf("prom scrape: %w", err)
					return
				}
				res, err := promlint.Lint(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- fmt.Errorf("prom scrape read: %w", err)
					return
				}
				if err := res.Err(); err != nil {
					errc <- fmt.Errorf("prom scrape lint: %w", err)
					return
				}
			}
		}()
	}

	// Scrapers run for exactly as long as the solve workload does.
	solveWG.Wait()
	close(done)
	scrapeWG.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// bandReqAtOrigin builds a halo-free band request: the block at (0,0)
// under mask W,N needs no inbound halos.
func bandReqAtOrigin(fleetID string, band, phase int) *api.BandRequest {
	req := &api.BandRequest{
		Rows: 8, Cols: 8,
		Row0: 0, Row1: 8, Col0: 0, Col1: 8,
		Mask:     "W,N",
		Workload: api.WorkloadSpec{Kind: api.KindMix, Seed: 7},
	}
	if fleetID != "" {
		req.Trace = &api.TraceContext{FleetID: fleetID, Band: band, Phase: phase}
	}
	return req
}

func TestTraceEndpoint(t *testing.T) {
	dir := t.TempDir()
	_, _, c := newTestService(t, server.Config{Workers: 2, TraceDir: dir})

	// Two blocks of the same fleet solve, one of another.
	for _, bp := range []struct {
		id          string
		band, phase int
	}{{"f-test", 0, 0}, {"f-test", 0, 1}, {"f-other", 1, 0}} {
		if _, err := c.SolveBand(context.Background(), bandReqAtOrigin(bp.id, bp.band, bp.phase)); err != nil {
			t.Fatal(err)
		}
	}

	nt, err := c.Trace(context.Background(), "f-test")
	if err != nil {
		t.Fatal(err)
	}
	if nt.FleetID != "f-test" {
		t.Errorf("NodeTrace.FleetID = %q, want f-test", nt.FleetID)
	}
	if len(nt.Blocks) != 2 {
		t.Fatalf("collected %d blocks for f-test, want 2", len(nt.Blocks))
	}
	for i, b := range nt.Blocks {
		if b.Meta.FleetID != "f-test" {
			t.Errorf("block %d meta fleet_id = %q, want f-test", i, b.Meta.FleetID)
		}
		if b.Meta.EpochUnixNS == 0 {
			t.Errorf("block %d meta epoch is zero; stitching cannot align it", i)
		}
		if len(b.Events) == 0 {
			t.Errorf("block %d carries no events", i)
		}
	}
	// Band/phase tags round-tripped through the recorder meta.
	phases := map[int]bool{}
	for _, b := range nt.Blocks {
		phases[b.Phase] = true
		if b.Band != 0 {
			t.Errorf("block band = %d, want 0", b.Band)
		}
	}
	if !phases[0] || !phases[1] {
		t.Errorf("phases collected = %v, want {0,1}", phases)
	}

	// Unknown fleet IDs are a typed 404.
	_, err = c.Trace(context.Background(), "f-missing")
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.HTTPStatus != http.StatusNotFound {
		t.Errorf("Trace(unknown) = %v, want HTTP 404", err)
	}
}

func TestTraceEndpointWithoutTraceDir(t *testing.T) {
	_, _, c := newTestService(t, server.Config{Workers: 2})
	if _, err := c.SolveBand(context.Background(), bandReqAtOrigin("f-x", 0, 0)); err != nil {
		t.Fatal(err)
	}
	_, err := c.Trace(context.Background(), "f-x")
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.HTTPStatus != http.StatusNotFound {
		t.Errorf("Trace without -tracedir = %v, want HTTP 404", err)
	}
}
