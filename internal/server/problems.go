// Package server implements the lddpd network solve service: HTTP/JSON
// handlers over the shared scheduler (lddp.Scheduler), with request
// validation, bounded in-flight admission, deadline propagation, status
// mapping of the scheduler's outcome trichotomy, and graceful drain.
// The wire protocol and client live in repro/lddp/client; DESIGN.md §10
// documents both sides.
package server

import (
	"fmt"

	"repro/internal/wire"
	"repro/internal/workload"
	"repro/lddp"
	"repro/lddp/api"
)

// MixProblem builds the seeded adversarial instance family of the
// conformance suite (internal/core/conformance_test.go): every
// contributing neighbour and the cell position are mixed through
// wraparound multiply-xor steps (splitmix-style), so reordered or torn
// reads anywhere in the distributed path change the output with
// overwhelming probability. It is the differential-test workhorse of the
// wire boundary: the e2e suite rebuilds the same instance locally and
// demands exact equality against the sequential oracle.
func MixProblem(seed int64, m lddp.DepMask, rows, cols int) *lddp.Problem[int64] {
	mix := func(v int64) int64 {
		v *= -7046029254386353131 // odd constant; wraparound is the point
		v ^= int64(uint64(v) >> 29)
		v *= -4658895280553007687
		v ^= int64(uint64(v) >> 32)
		return v
	}
	return &lddp.Problem[int64]{
		Name: fmt.Sprintf("mix-%s-%dx%d", m, rows, cols),
		Rows: rows, Cols: cols, Deps: m,
		F: func(i, j int, nb lddp.Neighbors[int64]) int64 {
			v := seed + int64(i)*1_000_003 + int64(j)
			if m.Has(lddp.DepW) {
				v = mix(v + 3*nb.W)
			}
			if m.Has(lddp.DepNW) {
				v = mix(v ^ nb.NW)
			}
			if m.Has(lddp.DepN) {
				v = mix(v + nb.N<<1)
			}
			if m.Has(lddp.DepNE) {
				v = mix(v - nb.NE)
			}
			return v
		},
		Boundary: func(i, j int) int64 {
			return mix(seed ^ (int64(i) << 20) ^ int64(j))
		},
		BytesPerCell: 8,
	}
}

// ServeProblem builds the load driver's benchmark recurrence (cheap
// add/xor mixing of every contributing neighbour — the cost class of real
// DP kernels, the same work per cell regardless of mask). cmd/lddpserve
// uses it for both its in-process and -url modes, so local and remote
// throughput runs execute the identical kernel.
func ServeProblem(m lddp.DepMask, rows, cols int) *lddp.Problem[int64] {
	return &lddp.Problem[int64]{
		Name: fmt.Sprintf("serve-%s-%dx%d", m, rows, cols),
		Rows: rows, Cols: cols, Deps: m,
		F: func(i, j int, nb lddp.Neighbors[int64]) int64 {
			v := int64(i*31 + j*17)
			if m.Has(lddp.DepW) {
				v += 2*nb.W + 1
			}
			if m.Has(lddp.DepNW) {
				v += 3 * nb.NW
			}
			if m.Has(lddp.DepN) {
				v += nb.N ^ 9
			}
			if m.Has(lddp.DepNE) {
				v += nb.NE - 7
			}
			return v
		},
		Boundary:     func(i, j int) int64 { return int64(i + 2*j) },
		BytesPerCell: 8,
	}
}

// CostProblem builds a min-plus shortest-path recurrence over a cost
// grid: cell = cost[i][j] + min over contributing neighbours (boundary
// reads cost zero). cells must be rows x cols, row-major. This is the
// inline-payload kind: the request carries the costs, so the server
// computes over caller data rather than a seeded generator.
func CostProblem(m lddp.DepMask, rows, cols int, cells [][]int64) (*lddp.Problem[int64], error) {
	if len(cells) != rows {
		return nil, fmt.Errorf("cost cells have %d rows, want %d", len(cells), rows)
	}
	for i, row := range cells {
		if len(row) != cols {
			return nil, fmt.Errorf("cost cells row %d has %d values, want %d", i, len(row), cols)
		}
	}
	return &lddp.Problem[int64]{
		Name: fmt.Sprintf("cost-%s-%dx%d", m, rows, cols),
		Rows: rows, Cols: cols, Deps: m,
		F: func(i, j int, nb lddp.Neighbors[int64]) int64 {
			best := int64(0)
			have := false
			take := func(v int64) {
				if !have || v < best {
					best, have = v, true
				}
			}
			if m.Has(lddp.DepW) {
				take(nb.W)
			}
			if m.Has(lddp.DepNW) {
				take(nb.NW)
			}
			if m.Has(lddp.DepN) {
				take(nb.N)
			}
			if m.Has(lddp.DepNE) {
				take(nb.NE)
			}
			return cells[i][j] + best
		},
		BytesPerCell: 8,
	}, nil
}

// GeneratedCostCells builds the seeded cost grid used by the "cost" kind
// when the request carries no inline payload, reusing the shortest-path
// generator of internal/workload (costs in [1, 64]).
func GeneratedCostCells(seed int64, rows, cols int) [][]int64 {
	g := workload.CostGrid(uint64(seed), rows, cols, 64)
	cells := make([][]int64, rows)
	for i := range cells {
		cells[i] = make([]int64, cols)
		for j := range cells[i] {
			cells[i][j] = int64(g[i][j])
		}
	}
	return cells
}

// AlignMask is the fixed contributing set of the "align" kind.
const AlignMask = api.AlignMask

// AlignProblem builds an edit-distance instance over two similar DNA
// strings from internal/workload (length rows and cols, ~5% mutations):
// the classic {W,NW,N} alignment recurrence on a realistic near-identical
// input pair.
func AlignProblem(seed int64, rows, cols int) *lddp.Problem[int64] {
	a, b := workload.SimilarStrings(uint64(seed), rows, workload.DNAAlphabet, 0.05)
	if cols != rows {
		b = workload.RandomString(uint64(seed)+1, cols, workload.DNAAlphabet)
	}
	return &lddp.Problem[int64]{
		Name: fmt.Sprintf("align-%dx%d", rows, cols),
		Rows: rows, Cols: cols, Deps: AlignMask,
		F: func(i, j int, nb lddp.Neighbors[int64]) int64 {
			sub := nb.NW
			if a[i] != b[j] {
				sub++
			}
			v := sub
			if d := nb.W + 1; d < v {
				v = d
			}
			if d := nb.N + 1; d < v {
				v = d
			}
			return v
		},
		// Boundary encodes the first row/column of the classic DP: the
		// distance of a prefix against the empty string.
		Boundary: func(i, j int) int64 {
			if i < 0 && j < 0 {
				return 0
			}
			if i < 0 {
				return int64(j + 1)
			}
			return int64(i + 1)
		},
		BytesPerCell: 8,
	}
}

// BuildProblem materializes the DP problem of a validated solve request.
// It is exported (and deterministic in the request) so the e2e
// differential suite can rebuild the exact server-side instance for its
// sequential oracle.
func BuildProblem(req *api.SolveRequest) (*lddp.Problem[int64], error) {
	kind := req.Workload.Kind
	if kind == "" {
		kind = api.KindMix
	}
	mask, err := api.ResolveMask(kind, req.Mask)
	if err != nil {
		return nil, err
	}
	switch kind {
	case api.KindMix:
		return MixProblem(req.Workload.Seed, mask, req.Rows, req.Cols), nil
	case api.KindServe:
		return ServeProblem(mask, req.Rows, req.Cols), nil
	case api.KindCost:
		cells := req.Workload.Cells
		if cells == nil {
			cells = GeneratedCostCells(req.Workload.Seed, req.Rows, req.Cols)
		}
		return CostProblem(mask, req.Rows, req.Cols, cells)
	case api.KindAlign:
		return AlignProblem(req.Workload.Seed, req.Rows, req.Cols), nil
	default:
		return nil, fmt.Errorf("unknown workload kind %q (want mix, serve, cost or align)", kind)
	}
}

// DigestCells computes the FNV-1a 64-bit word digest of a table's
// dimensions and row-major cell values, rendered as hex: a compact
// equality witness for tables too large to return over the wire. The
// fold is word-wise (each cell is one 64-bit FNV step, repro/internal/
// wire.CellsDigest) rather than byte-wise — digesting a multi-megabyte
// table used to dominate the wire path's cost over direct submission.
func DigestCells(rows, cols int, cells []int64) string {
	return fmt.Sprintf("%016x", wire.CellsDigest(rows, cols, cells))
}

// DigestGrid is DigestCells over a result grid.
func DigestGrid(g *lddp.Grid[int64]) string {
	return DigestCells(g.Rows(), g.Cols(), flatCells(g))
}
