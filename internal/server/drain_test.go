package server_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/testutil"
	"repro/lddp"
	"repro/lddp/client"
)

// runDrainSoak hammers a full service stack with concurrent submits and
// client-side cancellations, then drains it the way lddpd's SIGTERM path
// does, and checks the drain invariants:
//
//  1. every request ends in {done, timeout, overloaded/unavailable} —
//     never a 5xx or a transport-level failure,
//  2. /readyz flips to 503 while the listener is still open (a load
//     balancer must see the drain before the port dies),
//  3. after drain + close, zero goroutines leak.
//
// The randomness is seeded, so a failure reproduces with the same seed.
func runDrainSoak(t *testing.T, n, maxDim int, seed int64) {
	t.Helper()
	leak := testutil.StartLeakCheck()
	srv, err := server.New(server.Config{
		Workers: 4, Queue: 16, MaxInflight: 8, Chunk: 16,
		RetryAfter: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	c, err := client.New(ts.URL, client.WithRetry(client.RetryPolicy{MaxAttempts: 1}))
	if err != nil {
		t.Fatal(err)
	}
	masks := lddp.AllDepMasks()
	var (
		wg                                sync.WaitGroup
		mu                                sync.Mutex
		done, timedOut, rejected, drained int64
		failures                          []string
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	drainAt := n / 2
	drainedCh := make(chan struct{})
	for k := 0; k < n; k++ {
		if k == drainAt {
			// Mid-batch SIGTERM: readiness must flip while the listener
			// still answers, then the in-flight tail drains below.
			srv.BeginDrain()
			if err := c.Ready(context.Background()); !errors.Is(err, client.ErrUnavailable) {
				t.Errorf("readyz after BeginDrain (listener open) = %v, want ErrUnavailable", err)
			}
			close(drainedCh)
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(k)))
			m := masks[rng.Intn(len(masks))]
			req := &client.SolveRequest{
				Rows: 1 + rng.Intn(maxDim), Cols: 1 + rng.Intn(maxDim),
				Mask:     m.String(),
				Workload: client.WorkloadSpec{Kind: client.KindMix, Seed: seed},
			}
			ctx := context.Background()
			var cancel context.CancelFunc
			switch rng.Intn(4) {
			case 0: // tight server-side deadline
				req.DeadlineMS = 1 + int64(rng.Intn(3))
			case 1: // client abandons the request mid-flight
				ctx, cancel = context.WithCancel(ctx)
				delay := time.Duration(rng.Intn(2_000_000))
				go func() { time.Sleep(delay); cancel() }()
			}
			if cancel != nil {
				defer cancel()
			}
			_, err := c.Solve(ctx, req)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				done++
			case errors.Is(err, context.Canceled), errors.Is(err, client.ErrTimeout):
				timedOut++
			case errors.Is(err, client.ErrOverloaded):
				rejected++
			case errors.Is(err, client.ErrUnavailable):
				drained++
			default:
				fail("request %d: unexpected error %T: %v", k, err, err)
			}
		}(k)
	}
	wg.Wait()

	// The tail admitted before the drain must fully leave the handlers
	// within the bound.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Errorf("drain: %v", err)
	}
	<-drainedCh // the readyz flip was asserted before the listener closes
	ts.Close()
	srv.Close()
	c.Close()

	for _, f := range failures {
		t.Error(f)
	}
	if total := done + timedOut + rejected + drained + int64(len(failures)); total != int64(n) {
		t.Errorf("outcomes %d done + %d timeout + %d rejected + %d drained != %d requests",
			done, timedOut, rejected, drained, n)
	}
	if srv.ActiveRequests() != 0 {
		t.Errorf("drained server reports %d active requests", srv.ActiveRequests())
	}
	t.Logf("drain soak: %d done, %d timeout, %d rejected, %d drained", done, timedOut, rejected, drained)

	// Workers exited at Close; give stragglers (test-side cancel timers,
	// HTTP conn teardown) a moment before declaring a leak.
	if err := leak.Err(2 * time.Second); err != nil {
		t.Error(err)
	}
}

// TestServerDrainSoak is the short always-on variant (a second or two);
// the long variant runs under -tags soak.
func TestServerDrainSoak(t *testing.T) {
	runDrainSoak(t, 48, 48, 1)
}

// TestDrainBoundExpires pins the bounded-drain contract: a Drain whose
// context ends with requests still in flight reports the failure instead
// of hanging.
func TestDrainBoundExpires(t *testing.T) {
	srv, err := server.New(server.Config{Workers: 1, MaxInflight: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	c, err := client.New(ts.URL, client.WithRetry(client.RetryPolicy{MaxAttempts: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Hold one request in flight past the drain bound: a big solve with
	// a deadline far beyond it.
	started := make(chan struct{})
	finished := make(chan error, 1)
	go func() {
		close(started)
		_, err := c.Solve(context.Background(), &client.SolveRequest{
			Rows: 2048, Cols: 2048, Mask: "W,N", DeadlineMS: 5000,
		})
		finished <- err
	}()
	<-started
	// Wait until the request is inside the handler.
	for i := 0; i < 1000 && srv.ActiveRequests() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if srv.ActiveRequests() == 0 {
		t.Fatal("request never became active")
	}
	// A pre-expired bound: Drain must report the failure immediately
	// rather than waiting out the solve.
	ctx, cancel := context.WithTimeout(context.Background(), -time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err == nil {
		t.Error("drain with an in-flight solve returned nil before the solve finished")
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("drain error = %v, want context.DeadlineExceeded cause", err)
	}
	// The solve itself still completes (or times out server-side).
	if err := <-finished; err != nil && !errors.Is(err, client.ErrTimeout) {
		t.Errorf("held solve ended with %v", err)
	}
	if err := c.Ready(context.Background()); !errors.Is(err, client.ErrUnavailable) {
		t.Errorf("readyz after expired drain = %v, want ErrUnavailable (drain is sticky)", err)
	}
}
