package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/server"
	"repro/internal/wire"
	"repro/lddp/client"
)

// fuzzService lazily boots one shared service for the fuzz target. The
// caps are tiny so any input the validator accepts is a sub-millisecond
// solve — the fuzzer probes the decoder and validator, not the kernel.
var fuzzService struct {
	once sync.Once
	ts   *httptest.Server
}

func fuzzURL() string {
	fuzzService.once.Do(func() {
		srv, err := server.New(server.Config{
			Workers: 2, MaxInflight: 64,
			MaxCells: 4096, MaxInlineCells: 256, MaxResponseCells: 256,
		})
		if err != nil {
			panic(err)
		}
		fuzzService.ts = httptest.NewServer(srv.Handler())
	})
	return fuzzService.ts.URL
}

// frameFor renders one request as a binary wire frame for the corpus.
func frameFor(f *testing.F, req client.SolveRequest) string {
	f.Helper()
	var buf bytes.Buffer
	enc := wire.NewEncoder(&buf)
	hdr := req
	hdr.Workload.Cells = nil
	if err := enc.Header(&hdr); err != nil {
		f.Fatal(err)
	}
	if len(req.Workload.Cells) > 0 {
		var flat []int64
		for _, row := range req.Workload.Cells {
			flat = append(flat, row...)
		}
		if err := enc.Cells(flat); err != nil {
			f.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		f.Fatal(err)
	}
	return buf.String()
}

// FuzzSolveRequest throws arbitrary bytes at the wire boundary, under
// both codecs (binary selects the frame Content-Type). The invariants:
// the decoders/validator never panic, and every input ends in a
// well-formed response — a 4xx with a JSON ErrorBody, or a 200 whose
// body decodes as a SolveResponse with a digest. 5xx would mean a
// malformed request escaped validation into the scheduler.
func FuzzSolveRequest(f *testing.F) {
	// Valid corpus: one request per workload kind, drawn from the e2e
	// suite's shapes, plus edge and junk seeds — each fed through both
	// codec paths.
	valid := []client.SolveRequest{
		{Rows: 31, Cols: 37, Mask: "W,N", Workload: client.WorkloadSpec{Kind: client.KindMix, Seed: 1}},
		{Rows: 1, Cols: 33, Mask: "{W,NW,NE}", Workload: client.WorkloadSpec{Kind: client.KindServe}, Chunk: 8},
		{Rows: 2, Cols: 2, Mask: "N", Workload: client.WorkloadSpec{Kind: client.KindCost, Cells: [][]int64{{1, 2}, {3, 4}}}},
		{Rows: 33, Cols: 1, Workload: client.WorkloadSpec{Kind: client.KindAlign, Seed: 3}, ReturnCells: true},
		{Rows: 48, Cols: 48, Mask: "w,nw,n,ne", DeadlineMS: 50, Strategy: "parallel"},
	}
	for _, req := range valid {
		doc, err := json.Marshal(req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(doc), false)
		f.Add(frameFor(f, req), true)
	}
	f.Add(`{}`, false)
	f.Add(`{"rows":-1,"cols":5}`, false)
	f.Add(`{"rows":1000000,"cols":1000000}`, false)
	f.Add(`{"rows":4,"cols":4,"mask":"E"}`, false)
	f.Add(`{"rows":4,"cols":4,"workload":{"kind":"cost","cells":[[1,2]]}}`, false)
	f.Add(`{"rows":4,"cols":4}{"rows":4,"cols":4}`, false)
	f.Add(`[1,2,3]`, false)
	f.Add(`null`, false)
	f.Add("\x00\xff not json at all", false)
	// Binary edge seeds: JSON under the frame Content-Type, a bare
	// version byte, an unsupported version, varint junk, and a frame
	// claiming a huge cell chunk.
	f.Add(`{"rows":4,"cols":4}`, true)
	f.Add("\x01", true)
	f.Add("\x02\x00", true)
	f.Add("\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff", true)
	f.Add("\x01\x02{}\x80\x80\x80\x80\x80\x01", true)

	f.Fuzz(func(t *testing.T, body string, binary bool) {
		// Layer 1: the decoders alone must never panic; the JSON decoder
		// must keep the one-document framing rule.
		if binary {
			if req, release, err := server.ParseBinaryRequest(strings.NewReader(body), 256); err == nil {
				if req == nil {
					t.Fatal("ParseBinaryRequest returned nil request and nil error")
				}
				release()
			}
		} else if req, err := server.ParseSolveRequest(strings.NewReader(body)); err == nil && req == nil {
			t.Fatal("ParseSolveRequest returned nil request and nil error")
		}

		// Layer 2: the full handler stack.
		contentType := "application/json"
		if binary {
			contentType = wire.MediaType
		}
		resp, err := http.Post(fuzzURL()+"/v1/solve", contentType, strings.NewReader(body))
		if err != nil {
			t.Fatalf("transport error: %v", err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		if err != nil {
			t.Fatalf("reading response: %v", err)
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var out client.SolveResponse
			if err := json.Unmarshal(raw, &out); err != nil {
				t.Fatalf("200 body does not decode as SolveResponse: %v\n%s", err, raw)
			}
			if out.Status != "done" || out.ID <= 0 || out.Digest == "" {
				t.Fatalf("200 response malformed: %+v", out)
			}
		case resp.StatusCode >= 400 && resp.StatusCode < 500:
			var out client.ErrorBody
			if err := json.Unmarshal(raw, &out); err != nil {
				t.Fatalf("%d body does not decode as ErrorBody: %v\n%s", resp.StatusCode, err, raw)
			}
			if out.Error == "" || out.Status == "" {
				t.Fatalf("%d response missing error/status: %s", resp.StatusCode, raw)
			}
		default:
			t.Fatalf("input produced status %d (want 200 or 4xx): %s\nrequest: %q", resp.StatusCode, raw, body)
		}
	})
}
