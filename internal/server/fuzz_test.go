package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/server"
	"repro/lddp/client"
)

// fuzzService lazily boots one shared service for the fuzz target. The
// caps are tiny so any input the validator accepts is a sub-millisecond
// solve — the fuzzer probes the decoder and validator, not the kernel.
var fuzzService struct {
	once sync.Once
	ts   *httptest.Server
}

func fuzzURL() string {
	fuzzService.once.Do(func() {
		srv, err := server.New(server.Config{
			Workers: 2, MaxInflight: 64,
			MaxCells: 4096, MaxInlineCells: 256, MaxResponseCells: 256,
		})
		if err != nil {
			panic(err)
		}
		fuzzService.ts = httptest.NewServer(srv.Handler())
	})
	return fuzzService.ts.URL
}

// FuzzSolveRequest throws arbitrary bytes at the wire boundary. The
// invariants: the decoder/validator never panics, and every input ends
// in a well-formed response — a 4xx with a JSON ErrorBody, or a 200
// whose body decodes as a SolveResponse with a digest. 5xx would mean a
// malformed request escaped validation into the scheduler.
func FuzzSolveRequest(f *testing.F) {
	// Valid corpus: one request per workload kind, drawn from the e2e
	// suite's shapes, plus edge and junk seeds.
	valid := []client.SolveRequest{
		{Rows: 31, Cols: 37, Mask: "W,N", Workload: client.WorkloadSpec{Kind: client.KindMix, Seed: 1}},
		{Rows: 1, Cols: 33, Mask: "{W,NW,NE}", Workload: client.WorkloadSpec{Kind: client.KindServe}, Chunk: 8},
		{Rows: 2, Cols: 2, Mask: "N", Workload: client.WorkloadSpec{Kind: client.KindCost, Cells: [][]int64{{1, 2}, {3, 4}}}},
		{Rows: 33, Cols: 1, Workload: client.WorkloadSpec{Kind: client.KindAlign, Seed: 3}, ReturnCells: true},
		{Rows: 48, Cols: 48, Mask: "w,nw,n,ne", DeadlineMS: 50, Strategy: "parallel"},
	}
	for _, req := range valid {
		doc, err := json.Marshal(req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(doc))
	}
	f.Add(`{}`)
	f.Add(`{"rows":-1,"cols":5}`)
	f.Add(`{"rows":1000000,"cols":1000000}`)
	f.Add(`{"rows":4,"cols":4,"mask":"E"}`)
	f.Add(`{"rows":4,"cols":4,"workload":{"kind":"cost","cells":[[1,2]]}}`)
	f.Add(`{"rows":4,"cols":4}{"rows":4,"cols":4}`)
	f.Add(`[1,2,3]`)
	f.Add(`null`)
	f.Add("\x00\xff not json at all")

	f.Fuzz(func(t *testing.T, body string) {
		// Layer 1: the decoder alone must never panic and must keep the
		// one-document framing rule.
		if req, err := server.ParseSolveRequest(strings.NewReader(body)); err == nil && req == nil {
			t.Fatal("ParseSolveRequest returned nil request and nil error")
		}

		// Layer 2: the full handler stack.
		resp, err := http.Post(fuzzURL()+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("transport error: %v", err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		if err != nil {
			t.Fatalf("reading response: %v", err)
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var out client.SolveResponse
			if err := json.Unmarshal(raw, &out); err != nil {
				t.Fatalf("200 body does not decode as SolveResponse: %v\n%s", err, raw)
			}
			if out.Status != "done" || out.ID <= 0 || out.Digest == "" {
				t.Fatalf("200 response malformed: %+v", out)
			}
		case resp.StatusCode >= 400 && resp.StatusCode < 500:
			var out client.ErrorBody
			if err := json.Unmarshal(raw, &out); err != nil {
				t.Fatalf("%d body does not decode as ErrorBody: %v\n%s", resp.StatusCode, err, raw)
			}
			if out.Error == "" || out.Status == "" {
				t.Fatalf("%d response missing error/status: %s", resp.StatusCode, raw)
			}
		default:
			t.Fatalf("input produced status %d (want 200 or 4xx): %s\nrequest: %q", resp.StatusCode, raw, body)
		}
	})
}
