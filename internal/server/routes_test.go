package server_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
	"repro/lddp"
	"repro/lddp/api"
)

// TestRouteTable walks every versioned path, every legacy alias, and an
// unknown path, pinning the v1 surface: versioned and unversioned
// operational endpoints answer identically, and the 404 fallback is a
// JSON ErrorBody rather than the mux's text default.
func TestRouteTable(t *testing.T) {
	_, ts, _ := newTestService(t, server.Config{Workers: 2})
	cases := []struct {
		method, path string
		status       int
		jsonBody     bool
	}{
		{"GET", "/v1/healthz", http.StatusOK, false},
		{"GET", "/healthz", http.StatusOK, false},
		{"GET", "/v1/readyz", http.StatusOK, false},
		{"GET", "/readyz", http.StatusOK, false},
		{"GET", "/v1/metrics", http.StatusOK, true},
		{"GET", "/metrics", http.StatusOK, true},
		{"GET", "/v1/solve", http.StatusMethodNotAllowed, true},
		{"GET", "/v1/band/solve", http.StatusMethodNotAllowed, true},
		{"GET", "/v2/solve", http.StatusNotFound, true},
		{"GET", "/solve", http.StatusNotFound, true},
		{"POST", "/v1/nope", http.StatusNotFound, true},
		{"GET", "/", http.StatusNotFound, true},
	}
	for _, c := range cases {
		t.Run(c.method+" "+c.path, func(t *testing.T) {
			req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, c.status)
			}
			ct := resp.Header.Get("Content-Type")
			if c.jsonBody != strings.HasPrefix(ct, "application/json") {
				t.Fatalf("Content-Type %q, want json=%v", ct, c.jsonBody)
			}
			if c.status == http.StatusNotFound {
				var body api.ErrorBody
				if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
					t.Fatalf("404 body is not an ErrorBody: %v", err)
				}
				if body.Status != "not_found" || !strings.Contains(body.Error, c.path) {
					t.Fatalf("404 body = %+v, want status not_found naming %s", body, c.path)
				}
			}
		})
	}
}

// TestBandSolveMatchesFullTable solves a table whole, then solves an
// interior block of it via /v1/band/solve with oracle-sliced halos, and
// demands the block cells match the full solve exactly — the
// single-block correctness base case the fleet differential suite
// builds on.
func TestBandSolveMatchesFullTable(t *testing.T) {
	_, ts, _ := newTestService(t, server.Config{Workers: 2, Chunk: 8})
	const rows, cols, seed = 20, 17, 77
	for _, m := range lddp.AllDepMasks() {
		t.Run(m.String(), func(t *testing.T) {
			oracle, err := core.Solve(server.MixProblem(seed, m, rows, cols))
			if err != nil {
				t.Fatal(err)
			}
			req := &api.BandRequest{
				Rows: rows, Cols: cols,
				Row0: 5, Row1: 12, Col0: 4, Col1: 11,
				Mask:     m.String(),
				Workload: api.WorkloadSpec{Kind: api.KindMix, Seed: seed},
			}
			h := api.HaloSpec(m, rows, cols, req.Row0, req.Row1, req.Col0, req.Col1)
			if h.NorthLen > 0 {
				req.NorthLo = h.NorthLo
				for j := h.NorthLo; j < h.NorthLo+h.NorthLen; j++ {
					req.HaloNorth = append(req.HaloNorth, oracle.At(req.Row0-1, j))
				}
			}
			for i := 0; i < h.WestLen; i++ {
				req.HaloWest = append(req.HaloWest, oracle.At(req.Row0+i, req.Col0-1))
			}
			for i := 0; i < h.EastLen; i++ {
				req.HaloEast = append(req.HaloEast, oracle.At(req.Row0+i, req.Col1))
			}
			body, err := json.Marshal(req)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(ts.URL+"/v1/band/solve", "application/json", strings.NewReader(string(body)))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				var eb api.ErrorBody
				_ = json.NewDecoder(resp.Body).Decode(&eb)
				t.Fatalf("band solve: %d %+v", resp.StatusCode, eb)
			}
			var br api.BandResponse
			if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
				t.Fatal(err)
			}
			if len(br.Cells) != req.Row1-req.Row0 {
				t.Fatalf("band returned %d rows, want %d", len(br.Cells), req.Row1-req.Row0)
			}
			for i, row := range br.Cells {
				for j, v := range row {
					if want := oracle.At(req.Row0+i, req.Col0+j); v != want {
						t.Fatalf("cell (%d,%d): band %d, full %d", req.Row0+i, req.Col0+j, v, want)
					}
				}
			}
		})
	}
}

// TestBandSolveRejectsBadHalos pins validation: wrong halo lengths,
// inline cells, and out-of-table blocks all answer 400 with an
// ErrorBody.
func TestBandSolveRejectsBadHalos(t *testing.T) {
	_, ts, _ := newTestService(t, server.Config{Workers: 2})
	post := func(req *api.BandRequest) (int, api.ErrorBody) {
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/band/solve", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb api.ErrorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return resp.StatusCode, eb
	}
	base := func() *api.BandRequest {
		return &api.BandRequest{
			Rows: 10, Cols: 10, Row0: 2, Row1: 5, Col0: 0, Col1: 10,
			Mask:     "W,N",
			Workload: api.WorkloadSpec{Kind: api.KindMix, Seed: 1},
		}
	}
	for name, mutate := range map[string]func(*api.BandRequest){
		"missing north halo": func(r *api.BandRequest) {},
		"short north halo": func(r *api.BandRequest) {
			r.HaloNorth = []int64{1, 2}
		},
		"wrong north origin": func(r *api.BandRequest) {
			r.HaloNorth = make([]int64, 10)
			r.NorthLo = 3
		},
		"unneeded east halo": func(r *api.BandRequest) {
			r.HaloNorth = make([]int64, 10)
			r.HaloEast = []int64{1, 2, 3}
		},
		"inline cells": func(r *api.BandRequest) {
			r.HaloNorth = make([]int64, 10)
			r.Workload.Kind = api.KindCost
			r.Workload.Cells = [][]int64{{1}}
		},
		"inverted block": func(r *api.BandRequest) {
			r.HaloNorth = make([]int64, 10)
			r.Row0, r.Row1 = r.Row1, r.Row0
		},
		"block past table": func(r *api.BandRequest) {
			r.HaloNorth = make([]int64, 10)
			r.Col1 = 11
		},
	} {
		t.Run(name, func(t *testing.T) {
			req := base()
			mutate(req)
			code, eb := post(req)
			if code != http.StatusBadRequest || eb.Status != "invalid" {
				t.Fatalf("got %d %+v, want 400 invalid", code, eb)
			}
		})
	}
	// Control: the well-formed request is accepted.
	req := base()
	req.HaloNorth = make([]int64, 10)
	if code, eb := post(req); code != http.StatusOK {
		t.Fatalf("control request refused: %d %+v", code, eb)
	}
}
