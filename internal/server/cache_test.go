// Result-cache correctness: byte-identical replays, LRU eviction under
// size pressure, key separation across workload kinds and inline
// payloads, the Cache-Control escape hatches, and the counters surfaced
// through /metrics.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/lddp"
	"repro/lddp/client"
)

// solveOnce runs one request (with cells) and fails the test on error.
func solveOnce(t *testing.T, c *client.Client, req *client.SolveRequest) *client.SolveResponse {
	t.Helper()
	req.ReturnCells = true
	resp, err := c.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("solve %+v: %v", req, err)
	}
	return resp
}

func mixReq(seed int64, rows, cols int) *client.SolveRequest {
	return &client.SolveRequest{
		Rows: rows, Cols: cols, Mask: "W,N",
		Workload: client.WorkloadSpec{Kind: client.KindMix, Seed: seed},
	}
}

// TestCacheHitByteIdentical: the second identical request is served from
// the cache (Cached=true, original solve ID echoed) with the exact same
// digest and cell values, and the counters record one miss + one hit.
func TestCacheHitByteIdentical(t *testing.T) {
	srv, _, c := newTestService(t, server.Config{Workers: 2})
	cold := solveOnce(t, c, mixReq(42, 24, 24))
	if cold.Cached {
		t.Fatalf("first solve claims to be cached")
	}
	warm := solveOnce(t, c, mixReq(42, 24, 24))
	if !warm.Cached {
		t.Fatalf("second identical solve not served from cache")
	}
	if warm.ID != cold.ID {
		t.Errorf("cached response ID = %d, want the original solve's %d", warm.ID, cold.ID)
	}
	if warm.Digest != cold.Digest {
		t.Errorf("cached digest %s != cold digest %s", warm.Digest, cold.Digest)
	}
	if warm.Mask != cold.Mask || warm.Pattern != cold.Pattern {
		t.Errorf("cached echo fields differ: %q/%q vs %q/%q", warm.Mask, warm.Pattern, cold.Mask, cold.Pattern)
	}
	for i := range cold.Cells {
		for j := range cold.Cells[i] {
			if cold.Cells[i][j] != warm.Cells[i][j] {
				t.Fatalf("cached cell (%d,%d) = %d, want %d", i, j, warm.Cells[i][j], cold.Cells[i][j])
			}
		}
	}
	stats := srv.CacheStats()
	if stats.Hits != 1 || stats.Misses != 1 || stats.Stores != 1 {
		t.Errorf("counters = %+v, want 1 hit, 1 miss, 1 store", stats)
	}
	if stats.Entries != 1 || stats.Bytes <= 0 {
		t.Errorf("cache holds %d entries / %d bytes, want 1 entry with positive size", stats.Entries, stats.Bytes)
	}
}

// TestCacheEviction: a cache sized for roughly two tables evicts the
// least-recently-used entry when a third lands, so the oldest request
// solves again (miss) while the newer two stay hits.
func TestCacheEviction(t *testing.T) {
	// One 24x24 entry is 24*24*8 + overhead ≈ 4.9 KiB; a 12 KiB bound
	// admits each entry (under the half-bound store guard) but not three
	// at once.
	srv, _, c := newTestService(t, server.Config{Workers: 2, CacheBytes: 12 << 10})
	solveOnce(t, c, mixReq(1, 24, 24))
	solveOnce(t, c, mixReq(2, 24, 24))
	solveOnce(t, c, mixReq(3, 24, 24)) // overflows; evicts seed 1
	if stats := srv.CacheStats(); stats.Evictions < 1 {
		t.Fatalf("no eviction recorded after overflowing the bound: %+v", stats)
	}
	for seed := int64(2); seed <= 3; seed++ {
		if resp := solveOnce(t, c, mixReq(seed, 24, 24)); !resp.Cached {
			t.Errorf("recent entry (seed %d) was evicted; want the LRU victim instead", seed)
		}
	}
	if resp := solveOnce(t, c, mixReq(1, 24, 24)); resp.Cached {
		t.Errorf("evicted entry still answered from cache")
	}
	if stats := srv.CacheStats(); stats.Bytes > 12<<10 {
		t.Errorf("cache bytes %d exceed the configured bound", stats.Bytes)
	}
}

// TestCacheOversizeEntryNotStored: a result larger than half the bound
// is never inserted — one giant table must not wipe the working set.
func TestCacheOversizeEntryNotStored(t *testing.T) {
	srv, _, c := newTestService(t, server.Config{Workers: 2, CacheBytes: 8 << 10})
	solveOnce(t, c, mixReq(7, 48, 48)) // 18 KiB of cells > 4 KiB half-bound
	if stats := srv.CacheStats(); stats.Stores != 0 || stats.Entries != 0 {
		t.Errorf("oversize result was stored: %+v", stats)
	}
	if resp := solveOnce(t, c, mixReq(7, 48, 48)); resp.Cached {
		t.Errorf("oversize result answered from cache")
	}
}

// TestCacheKeySeparation: requests that differ only in workload kind,
// seed, mask, strategy, or inline payload must not collide.
func TestCacheKeySeparation(t *testing.T) {
	_, _, c := newTestService(t, server.Config{Workers: 2})
	base := solveOnce(t, c, mixReq(5, 16, 16))

	variants := []*client.SolveRequest{
		{Rows: 16, Cols: 16, Mask: "W,N", Workload: client.WorkloadSpec{Kind: client.KindCost, Seed: 5}},
		{Rows: 16, Cols: 16, Mask: "W,N", Workload: client.WorkloadSpec{Kind: client.KindServe}},
		{Rows: 16, Cols: 16, Mask: "W,NW", Workload: client.WorkloadSpec{Kind: client.KindMix, Seed: 5}},
		{Rows: 16, Cols: 16, Mask: "W,N", Strategy: "parallel", Workload: client.WorkloadSpec{Kind: client.KindMix, Seed: 5}},
		mixReq(6, 16, 16),
	}
	for _, req := range variants {
		if resp := solveOnce(t, c, req); resp.Cached {
			t.Errorf("request %+v answered from another key's cache entry", req)
		}
	}
	// The strategy variant computes the same table; everything else must
	// also produce its own digest or, for equal-result variants, at least
	// its own entry. Spot-check the kind collision, the dangerous one.
	cost := solveOnce(t, c, &client.SolveRequest{
		Rows: 16, Cols: 16, Mask: "W,N",
		Workload: client.WorkloadSpec{Kind: client.KindCost, Seed: 5},
	})
	if !cost.Cached {
		t.Fatalf("repeat of the cost request missed its own entry")
	}
	if cost.Digest == base.Digest {
		t.Errorf("mix and cost with the same seed share a digest — generator collision")
	}
}

// TestCacheInlineCellsContentAddressed: two inline cost payloads with
// identical shape but different values get distinct entries, and the
// same payload replayed hits.
func TestCacheInlineCellsContentAddressed(t *testing.T) {
	_, _, c := newTestService(t, server.Config{Workers: 2})
	gridA := [][]int64{{1, 2}, {3, 4}}
	gridB := [][]int64{{1, 2}, {3, 5}}
	reqFor := func(cells [][]int64) *client.SolveRequest {
		return &client.SolveRequest{
			Rows: 2, Cols: 2, Mask: "W,N",
			Workload: client.WorkloadSpec{Kind: client.KindCost, Cells: cells},
		}
	}
	a := solveOnce(t, c, reqFor(gridA))
	b := solveOnce(t, c, reqFor(gridB))
	if b.Cached {
		t.Fatalf("different inline payload answered from the first payload's entry")
	}
	if a.Digest == b.Digest {
		t.Errorf("different inline payloads produced the same digest")
	}
	if again := solveOnce(t, c, reqFor(gridA)); !again.Cached || again.Digest != a.Digest {
		t.Errorf("replayed inline payload: cached=%v digest=%s, want cached hit with digest %s",
			again.Cached, again.Digest, a.Digest)
	}
}

// TestCacheControlBypassAndNoStore drives the raw HTTP surface:
// no-cache skips the lookup (X-Lddp-Cache: bypass) but still stores;
// no-store skips both.
func TestCacheControlBypassAndNoStore(t *testing.T) {
	srv, ts, _ := newTestService(t, server.Config{Workers: 2})
	post := func(cacheControl string, req *client.SolveRequest) (*http.Response, *client.SolveResponse) {
		t.Helper()
		doc, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		if cacheControl != "" {
			hreq.Header.Set("Cache-Control", cacheControl)
		}
		hresp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		defer hresp.Body.Close()
		if hresp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", hresp.StatusCode)
		}
		var out client.SolveResponse
		if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return hresp, &out
	}

	// no-cache: the lookup is skipped even though the store still runs.
	hresp, out := post("no-cache", mixReq(9, 8, 8))
	if got := hresp.Header.Get(server.CacheHeader); got != "bypass" {
		t.Errorf("%s = %q, want bypass", server.CacheHeader, got)
	}
	if out.Cached {
		t.Errorf("bypassed request claims to be cached")
	}
	hresp, out = post("no-cache", mixReq(9, 8, 8))
	if got := hresp.Header.Get(server.CacheHeader); got != "bypass" || out.Cached {
		t.Errorf("second no-cache request: header=%q cached=%v, want bypass/false", got, out.Cached)
	}
	// Without the header the stored entry answers.
	hresp, out = post("", mixReq(9, 8, 8))
	if got := hresp.Header.Get(server.CacheHeader); got != "hit" || !out.Cached {
		t.Errorf("post-bypass request: header=%q cached=%v, want hit/true", got, out.Cached)
	}

	// no-store: neither lookup nor insert.
	before := srv.CacheStats()
	post("no-store", mixReq(10, 8, 8))
	after := srv.CacheStats()
	if after.Stores != before.Stores {
		t.Errorf("no-store request was stored (%d -> %d stores)", before.Stores, after.Stores)
	}
	if _, out := post("", mixReq(10, 8, 8)); out.Cached {
		t.Errorf("no-store request left a cache entry behind")
	}
	if stats := srv.CacheStats(); stats.Bypasses < 3 {
		t.Errorf("bypasses = %d, want at least 3 (two no-cache + one no-store)", stats.Bypasses)
	}
}

// TestCacheDisabled: CacheBytes < 0 turns the cache off entirely — no
// hits, no stores, all-zero stats, and no X-Lddp-Cache header.
func TestCacheDisabled(t *testing.T) {
	srv, ts, c := newTestService(t, server.Config{Workers: 2, CacheBytes: -1})
	solveOnce(t, c, mixReq(3, 8, 8))
	if resp := solveOnce(t, c, mixReq(3, 8, 8)); resp.Cached {
		t.Fatalf("disabled cache served a hit")
	}
	if stats := srv.CacheStats(); stats != (lddp.CacheSnapshot{}) {
		t.Errorf("disabled cache reports non-zero stats: %+v", stats)
	}
	doc, _ := json.Marshal(mixReq(3, 8, 8))
	hresp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(string(doc)))
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if got := hresp.Header.Get(server.CacheHeader); got != "" {
		t.Errorf("disabled cache still sets %s=%q", server.CacheHeader, got)
	}
}

// TestMetricsCarriesCacheAndWire: the /metrics document includes the
// cache and wire sections, matching the server's own counters.
func TestMetricsCarriesCacheAndWire(t *testing.T) {
	srv, _, c := newTestService(t, server.Config{Workers: 2})
	solveOnce(t, c, mixReq(11, 8, 8))
	solveOnce(t, c, mixReq(11, 8, 8))
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cache != srv.CacheStats() {
		t.Errorf("metrics cache section %+v != server stats %+v", snap.Cache, srv.CacheStats())
	}
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 {
		t.Errorf("cache section = %+v, want 1 hit / 1 miss", snap.Cache)
	}
	wire := snap.Wire
	if wire.JSONRequests < 2 || wire.JSONResponses < 2 {
		t.Errorf("wire section undercounts JSON traffic: %+v", wire)
	}
	if wire.BinaryRequests != 0 || wire.BinaryResponses != 0 || wire.BinaryRejects != 0 {
		t.Errorf("wire section counts binary traffic that never happened: %+v", wire)
	}
}
