package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"

	"repro/internal/trace"
)

// maxIndexedFleets bounds the trace index: beyond it the oldest fleet's
// block references are forgotten (FIFO). The files themselves stay in
// TraceDir — the bound is on the lookup structure, not the dumps.
const maxIndexedFleets = 64

// blockRef locates one fleet block's trace dump on disk.
type blockRef struct {
	solveID     int64
	band, phase int
	path        string
}

// traceIndex maps fleet solve IDs to the block trace files this node
// wrote for them, backing GET /v1/trace/{fleetID}. It exists because
// the coordinator knows fleet IDs while TraceDir file names carry
// node-local solve IDs; the index is the join between the two.
type traceIndex struct {
	mu     sync.Mutex
	fleets map[string][]blockRef
	order  []string
}

func newTraceIndex() *traceIndex {
	return &traceIndex{fleets: map[string][]blockRef{}}
}

// add records one block trace file under its fleet ID, evicting the
// oldest fleet past the bound.
func (t *traceIndex) add(fleetID string, ref blockRef) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.fleets[fleetID]; !ok {
		t.order = append(t.order, fleetID)
		if len(t.order) > maxIndexedFleets {
			delete(t.fleets, t.order[0])
			t.order = t.order[1:]
		}
	}
	t.fleets[fleetID] = append(t.fleets[fleetID], ref)
}

// get returns the block references of one fleet solve, nil if unknown.
func (t *traceIndex) get(fleetID string) []blockRef {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]blockRef(nil), t.fleets[fleetID]...)
}

// size returns the number of fleets currently indexed.
func (t *traceIndex) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.order)
}

// handleTrace serves GET /v1/trace/{fleetID}: the node's block trace
// dumps for one fleet solve, read back from TraceDir and answered as a
// trace.NodeTrace JSON document. 404s carry the usual ErrorBody: an
// unknown fleet ID and tracing disabled are both "this node has no
// traces for that solve".
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, "invalid", 0, "GET required")
		return
	}
	fleetID := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	if fleetID == "" || strings.Contains(fleetID, "/") {
		s.writeError(w, http.StatusNotFound, "not_found", 0,
			fmt.Sprintf("no route %s %s", r.Method, r.URL.Path))
		return
	}
	var refs []blockRef
	if s.traces != nil {
		refs = s.traces.get(fleetID)
	}
	if len(refs) == 0 {
		s.writeError(w, http.StatusNotFound, "not_found", 0,
			fmt.Sprintf("no traces recorded for fleet solve %q (tracing requires -tracedir)", fleetID))
		return
	}
	nt := trace.NodeTrace{FleetID: fleetID}
	for _, ref := range refs {
		f, err := os.Open(ref.path)
		if err != nil {
			// The dump aged out of TraceDir (or the disk failed); the
			// remaining blocks are still worth answering.
			continue
		}
		meta, events, err := trace.ReadChrome(f)
		f.Close()
		if err != nil {
			s.logf("trace %s: reading %s: %v", fleetID, ref.path, err)
			continue
		}
		nt.Blocks = append(nt.Blocks, trace.BlockTrace{
			SolveID: ref.solveID, Band: ref.band, Phase: ref.phase,
			Meta: meta, Events: events,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(&nt); err != nil {
		s.logf("writing trace %s: %v", fleetID, err)
	}
}
