package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/sched"
	"repro/internal/wire"
	"repro/lddp"
	"repro/lddp/api"
)

// ParseBandRequest decodes one POST /v1/band/solve JSON body with the
// same strictness as ParseSolveRequest.
func ParseBandRequest(r io.Reader) (*api.BandRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req api.BandRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding band request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("band request body holds more than one JSON document")
	}
	return &req, nil
}

// ParseBinaryBandRequest decodes one wire-frame band request: the frame
// header is the BandRequest JSON document with the halo arrays omitted,
// and the halos travel as tagged halo sections (wire.SectionNorth/West/
// East). The cell section must be empty — band workloads are
// regenerated from the seed, never shipped inline. maxHaloCells caps
// the summed section lengths.
func ParseBinaryBandRequest(r io.Reader, maxHaloCells int) (*api.BandRequest, error) {
	d := wire.NewDecoder(r)
	defer d.Release()
	d.SetMaxHeaderBytes(1 << 20)
	d.SetMaxCells(int64(maxHaloCells))
	hdr, err := d.Header()
	if err != nil {
		return nil, fmt.Errorf("decoding band frame: %w", err)
	}
	req := new(api.BandRequest)
	dec := json.NewDecoder(bytes.NewReader(hdr))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		return nil, fmt.Errorf("decoding band frame header: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("band frame header holds more than one JSON document")
	}
	cells, err := d.Cells(nil)
	if err != nil {
		return nil, fmt.Errorf("decoding band frame cells: %w", err)
	}
	if len(cells) != 0 {
		return nil, fmt.Errorf("band frame carries %d inline cells; band workloads are seed-generated", len(cells))
	}
	for {
		tag, halo, err := d.Section(nil)
		if err != nil {
			return nil, fmt.Errorf("decoding band frame halo section: %w", err)
		}
		if tag == 0 {
			break
		}
		switch tag {
		case wire.SectionNorth:
			if req.HaloNorth != nil {
				return nil, fmt.Errorf("band frame repeats the north halo section")
			}
			req.HaloNorth = halo
		case wire.SectionWest:
			if req.HaloWest != nil {
				return nil, fmt.Errorf("band frame repeats the west halo section")
			}
			req.HaloWest = halo
		case wire.SectionEast:
			if req.HaloEast != nil {
				return nil, fmt.Errorf("band frame repeats the east halo section")
			}
			req.HaloEast = halo
		default:
			return nil, fmt.Errorf("band frame holds unknown halo section tag %d", tag)
		}
	}
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("verifying band frame: %w", err)
	}
	return req, nil
}

// ValidateBandRequest checks a band request against the server's caps
// and the exact halo coverage api.HaloSpec demands for the resolved
// mask, returning that mask. A halo of the wrong length is refused
// outright — padding or clipping it server-side would silently solve a
// different block.
func (s *Server) ValidateBandRequest(req *api.BandRequest) (lddp.DepMask, error) {
	if req.Rows <= 0 || req.Cols <= 0 {
		return 0, fmt.Errorf("table size %dx%d invalid: rows and cols must be positive", req.Rows, req.Cols)
	}
	if int64(req.Rows)*int64(req.Cols) > s.cfg.MaxCells {
		return 0, fmt.Errorf("table size %dx%d exceeds the per-request cap of %d cells", req.Rows, req.Cols, s.cfg.MaxCells)
	}
	if req.Row0 < 0 || req.Row0 >= req.Row1 || req.Row1 > req.Rows ||
		req.Col0 < 0 || req.Col0 >= req.Col1 || req.Col1 > req.Cols {
		return 0, fmt.Errorf("block rows [%d,%d) x cols [%d,%d) outside the %dx%d table",
			req.Row0, req.Row1, req.Col0, req.Col1, req.Rows, req.Cols)
	}
	switch req.Strategy {
	case "", "auto", "parallel", "async":
	default:
		return 0, fmt.Errorf("unknown strategy %q (want auto, parallel or async)", req.Strategy)
	}
	switch req.Workload.Kind {
	case "", api.KindMix, api.KindServe, api.KindCost, api.KindAlign:
	default:
		return 0, fmt.Errorf("unknown workload kind %q (want mix, serve, cost or align)", req.Workload.Kind)
	}
	if req.Workload.Cells != nil {
		return 0, fmt.Errorf("inline cells are not valid in band requests; band workloads must be seed-generated")
	}
	if req.Chunk < 0 || req.Chunk > sched.MaxChunk {
		return 0, fmt.Errorf("chunk %d outside [0, %d]", req.Chunk, sched.MaxChunk)
	}
	if req.DeadlineMS < 0 || req.DeadlineMS > MaxDeadlineMS {
		return 0, fmt.Errorf("deadline_ms %d outside [0, %d]", req.DeadlineMS, MaxDeadlineMS)
	}
	kind := req.Workload.Kind
	if kind == "" {
		kind = api.KindMix
	}
	mask, err := api.ResolveMask(kind, req.Mask)
	if err != nil {
		return 0, err
	}
	h := api.HaloSpec(mask, req.Rows, req.Cols, req.Row0, req.Row1, req.Col0, req.Col1)
	if len(req.HaloNorth) != h.NorthLen {
		return 0, fmt.Errorf("north halo has %d cells, mask %s needs %d", len(req.HaloNorth), mask, h.NorthLen)
	}
	if h.NorthLen > 0 && req.NorthLo != h.NorthLo {
		return 0, fmt.Errorf("north halo starts at column %d, mask %s needs %d", req.NorthLo, mask, h.NorthLo)
	}
	if len(req.HaloWest) != h.WestLen {
		return 0, fmt.Errorf("west halo has %d cells, mask %s needs %d", len(req.HaloWest), mask, h.WestLen)
	}
	if len(req.HaloEast) != h.EastLen {
		return 0, fmt.Errorf("east halo has %d cells, mask %s needs %d", len(req.HaloEast), mask, h.EastLen)
	}
	return mask, nil
}

// BlockProblem wraps a full-table problem into the block a band request
// names: the recurrence is the base one shifted into block coordinates,
// and the boundary resolves across-block neighbour reads from the
// request's halos — north for row Row0-1 (including the NW/NE corner
// columns HaloSpec widened it by), west for column Col0-1, east for
// column Col1. Reads past the FULL table still go to the base
// workload's own boundary, so a block touching the table edge computes
// exactly what the unsharded solve would. A halo index outside its
// span (impossible for a validated request) reads zero rather than
// panicking a scheduler worker; the coordinator's digest differential
// catches the corruption.
func BlockProblem(base *lddp.Problem[int64], req *api.BandRequest, mask lddp.DepMask) *lddp.Problem[int64] {
	r0, c0 := req.Row0, req.Col0
	bRows, bCols := req.Row1-req.Row0, req.Col1-req.Col0
	north, west, east := req.HaloNorth, req.HaloWest, req.HaloEast
	northLo := req.NorthLo
	return &lddp.Problem[int64]{
		Name: fmt.Sprintf("%s-band-r%d-c%d", base.Name, r0, c0),
		Rows: bRows, Cols: bCols, Deps: mask,
		F: func(i, j int, nb lddp.Neighbors[int64]) int64 {
			return base.F(i+r0, j+c0, nb)
		},
		Boundary: func(i, j int) int64 {
			gi, gj := i+r0, j+c0
			if gi < 0 || gi >= base.Rows || gj < 0 || gj >= base.Cols {
				if base.Boundary != nil {
					return base.Boundary(gi, gj)
				}
				return 0
			}
			switch {
			case i < 0:
				if k := gj - northLo; k >= 0 && k < len(north) {
					return north[k]
				}
			case j < 0:
				if i < len(west) {
					return west[i]
				}
			case j >= bCols:
				if i < len(east) {
					return east[i]
				}
			}
			return 0
		},
		BytesPerCell: base.BytesPerCell,
	}
}

// handleBandSolve runs one POST /v1/band/solve request: the fleet peer
// protocol's unit of work. It shares the solve path's limiter, codec
// negotiation and outcome-trichotomy status mapping, but never touches
// the result cache — a block's halos make it context-dependent, so
// caching would trade correctness for nothing.
func (s *Server) handleBandSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "invalid", 0, "POST required")
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining", 0, "server is draining")
		return
	}
	select {
	case s.inflight <- struct{}{}:
	default:
		s.writeError(w, http.StatusTooManyRequests, "rejected", 0,
			fmt.Sprintf("server at its in-flight limit (%d)", s.cfg.MaxInflight))
		return
	}
	s.active.Add(1)
	defer func() {
		s.active.Add(-1)
		<-s.inflight
	}()
	if s.cfg.Hooks.OnSolveAdmitted != nil {
		s.cfg.Hooks.OnSolveAdmitted(true)
	}

	w = &countingResponseWriter{ResponseWriter: w, n: &s.wireStats.responseBytes}
	neg := negotiate(r)
	r.Body = &countingReader{
		r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes),
		n: &s.wireStats.requestBytes,
	}
	var req *api.BandRequest
	var err error
	if neg.binaryRequest {
		s.wireStats.binaryRequests.Add(1)
		req, err = ParseBinaryBandRequest(r.Body, s.cfg.MaxInlineCells)
		if err != nil {
			s.wireStats.binaryRejects.Add(1)
		}
	} else {
		s.wireStats.jsonRequests.Add(1)
		req, err = ParseBandRequest(r.Body)
	}
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid", 0, err.Error())
		return
	}
	mask, err := s.ValidateBandRequest(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid", 0, err.Error())
		return
	}
	if n := len(req.HaloNorth) + len(req.HaloWest) + len(req.HaloEast); n > 0 {
		s.wireStats.haloValues.Add(int64(n))
		s.wireStats.haloBytes.Add(int64(n) * 8)
	}
	base, err := BuildProblem(&api.SolveRequest{
		Rows: req.Rows, Cols: req.Cols, Mask: req.Mask, Workload: req.Workload,
	})
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid", 0, err.Error())
		return
	}
	block := BlockProblem(base, req, mask)

	start := time.Now()
	ctx := r.Context()
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	opts := []lddp.Option{}
	switch req.Strategy {
	case "parallel":
		opts = append(opts, lddp.WithStrategy(lddp.Parallel))
	case "async":
		opts = append(opts, lddp.WithStrategy(lddp.Async))
	}
	if req.Chunk > 0 {
		opts = append(opts, lddp.WithChunk(req.Chunk))
	}
	var tracer *lddp.Tracer
	if s.cfg.TraceDir != "" {
		tracer = lddp.NewTracer()
		if req.Trace != nil {
			// The fleet tag rides every export of this trace, which is
			// what lets GET /v1/trace/{fleetID} and the coordinator's
			// stitcher attribute the block to its originating solve.
			tracer.SetFleetTag(req.Trace.FleetID, req.Trace.Band, req.Trace.Phase)
		}
		opts = append(opts, lddp.WithTracer(tracer))
	}
	sub, err := lddp.Submit(ctx, s.sched, block, opts...)
	if err != nil {
		s.writeSubmitError(w, r, err)
		return
	}
	id := sub.ID()
	grid, err := sub.Wait()
	if tracer != nil {
		path := s.writeTraceFile(id, tracer)
		if path != "" && req.Trace != nil && s.traces != nil {
			s.traces.add(req.Trace.FleetID, blockRef{
				solveID: id, band: req.Trace.Band, phase: req.Trace.Phase, path: path,
			})
		}
	}
	if err != nil {
		s.writeOutcomeError(w, r, id, err)
		return
	}
	flat := flatCells(grid)
	resp := &api.BandResponse{
		ID: id, Status: "done",
		Row0: req.Row0, Row1: req.Row1, Col0: req.Col0, Col1: req.Col1,
		Mask:      mask.String(),
		Digest:    DigestCells(block.Rows, block.Cols, flat),
		ElapsedMS: float64(time.Since(start).Nanoseconds()) / 1e6,
	}
	s.writeBandResponse(w, neg, resp, flat)
}

// writeBandResponse renders one completed band solve under the
// negotiated codec. The block's cells are always included — the
// coordinator needs every block to assemble the table — so the binary
// codec is strongly preferred for non-trivial bands.
func (s *Server) writeBandResponse(w http.ResponseWriter, neg negotiation, resp *api.BandResponse, flat []int64) {
	w.Header().Set(api.SolveIDHeader, fmt.Sprint(resp.ID))
	bRows, bCols := resp.Row1-resp.Row0, resp.Col1-resp.Col0
	if neg.binaryResponse {
		s.wireStats.binaryResponses.Add(1)
		w.Header().Set("Content-Type", wire.MediaType)
		enc := wire.NewEncoder(w)
		if len(flat) > wire.ChunkCells {
			if f, ok := w.(http.Flusher); ok {
				enc.SetFlush(f.Flush)
			}
		}
		hdr := *resp
		hdr.Cells = nil
		err := enc.Header(hdr)
		if err == nil {
			err = enc.Cells(flat)
		}
		if err != nil {
			enc.Abort()
			s.logf("band solve %d: writing binary response: %v", resp.ID, err)
			return
		}
		if err := enc.Close(); err != nil {
			s.logf("band solve %d: writing binary response: %v", resp.ID, err)
		}
		return
	}
	s.wireStats.jsonResponses.Add(1)
	rows := make([][]int64, bRows)
	for i := range rows {
		rows[i] = flat[i*bCols : (i+1)*bCols]
	}
	resp.Cells = rows
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.logf("band solve %d: writing response: %v", resp.ID, err)
	}
}
