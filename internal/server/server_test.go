package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/lddp/client"
)

// postJSON sends one raw body at /v1/solve and returns the response.
func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// decodeErrorBody decodes the typed error payload every non-2xx carries.
func decodeErrorBody(t *testing.T, resp *http.Response) client.ErrorBody {
	t.Helper()
	var body client.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	return body
}

func TestSolveStatusMapping(t *testing.T) {
	srv, ts, c := newTestService(t, server.Config{Workers: 2, MaxInflight: 1})

	t.Run("done", func(t *testing.T) {
		resp, err := c.Solve(context.Background(), &client.SolveRequest{Rows: 8, Cols: 8, Mask: "W,N"})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != "done" || resp.ID <= 0 || resp.Digest == "" {
			t.Errorf("done response malformed: %+v", resp)
		}
		if resp.Mask != "{W,N}" || resp.Pattern == "" {
			t.Errorf("mask/pattern not echoed: %+v", resp)
		}
	})

	t.Run("method", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/solve")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/solve = %d, want 405", resp.StatusCode)
		}
	})

	t.Run("malformed-json", func(t *testing.T) {
		resp := postJSON(t, ts.URL, "{not json")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400", resp.StatusCode)
		}
		if body := decodeErrorBody(t, resp); body.Status != "invalid" {
			t.Errorf("status field %q, want invalid", body.Status)
		}
	})

	t.Run("unknown-field", func(t *testing.T) {
		resp := postJSON(t, ts.URL, `{"rows":4,"cols":4,"masq":"W,N"}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("bad-mask", func(t *testing.T) {
		resp := postJSON(t, ts.URL, `{"rows":4,"cols":4,"mask":"E,Q"}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("bad-kind", func(t *testing.T) {
		resp := postJSON(t, ts.URL, `{"rows":4,"cols":4,"workload":{"kind":"nope"}}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("too-large", func(t *testing.T) {
		resp := postJSON(t, ts.URL, `{"rows":100000,"cols":100000}`)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("status %d, want 413", resp.StatusCode)
		}
	})

	t.Run("overloaded", func(t *testing.T) {
		release := srv.AcquireInflightForTest()
		defer release()
		resp := postJSON(t, ts.URL, `{"rows":4,"cols":4}`)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("429 without Retry-After header")
		}
		body := decodeErrorBody(t, resp)
		if body.Status != "rejected" || body.RetryAfterMS <= 0 {
			t.Errorf("429 body malformed: %+v", body)
		}
		// The typed client maps it onto ErrOverloaded.
		c2, err := client.New(ts.URL, client.WithRetry(client.RetryPolicy{MaxAttempts: 1}))
		if err != nil {
			t.Fatal(err)
		}
		defer c2.Close()
		_, err = c2.Solve(context.Background(), &client.SolveRequest{Rows: 4, Cols: 4})
		if !errors.Is(err, client.ErrOverloaded) {
			t.Errorf("client error = %v, want ErrOverloaded", err)
		}
	})

	t.Run("deadline", func(t *testing.T) {
		// 1 ms against a million-cell table cannot finish: the deadline
		// expires queued or mid-run, either way a 408 on the wire.
		_, err := c.Solve(context.Background(), &client.SolveRequest{
			Rows: 1024, Cols: 1024, Mask: "W,N", DeadlineMS: 1,
		})
		if !errors.Is(err, client.ErrTimeout) {
			t.Errorf("client error = %v, want ErrTimeout", err)
		}
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.HTTPStatus != http.StatusRequestTimeout {
			t.Errorf("error = %#v, want HTTP 408", err)
		}
	})
}

func TestHealthReadyMetricsEndpoints(t *testing.T) {
	srv, _, c := newTestService(t, server.Config{Workers: 2})
	if err := c.Health(context.Background()); err != nil {
		t.Errorf("healthz: %v", err)
	}
	if err := c.Ready(context.Background()); err != nil {
		t.Errorf("readyz before drain: %v", err)
	}
	if _, err := c.Solve(context.Background(), &client.SolveRequest{Rows: 16, Cols: 16}); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Sched.Done < 1 || snap.Solves < 1 {
		t.Errorf("metrics missed the solve: sched.done=%d solves=%d", snap.Sched.Done, snap.Solves)
	}

	// Draining: readyz flips to 503 and new solves are refused with a
	// typed draining body, while healthz stays 200 (the process lives).
	srv.BeginDrain()
	if err := c.Ready(context.Background()); !errors.Is(err, client.ErrUnavailable) {
		t.Errorf("readyz during drain = %v, want ErrUnavailable", err)
	}
	if err := c.Health(context.Background()); err != nil {
		t.Errorf("healthz during drain: %v", err)
	}
	_, err = c.Solve(context.Background(), &client.SolveRequest{Rows: 4, Cols: 4})
	if !errors.Is(err, client.ErrUnavailable) {
		t.Errorf("solve during drain = %v, want ErrUnavailable", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != "draining" {
		t.Errorf("drain error body = %#v, want status draining", err)
	}
}

func TestSolveIDHeaderEchoed(t *testing.T) {
	_, ts, _ := newTestService(t, server.Config{Workers: 2})
	resp := postJSON(t, ts.URL, `{"rows":8,"cols":8,"mask":"W,N"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out client.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	hdr := resp.Header.Get(client.SolveIDHeader)
	if hdr == "" {
		t.Fatalf("response missing %s header", client.SolveIDHeader)
	}
	if hdr != jsonNumber(out.ID) {
		t.Errorf("header %s = %s, body id = %d", client.SolveIDHeader, hdr, out.ID)
	}
}

// jsonNumber renders an int64 the way the header does.
func jsonNumber(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func TestTraceDirWiring(t *testing.T) {
	dir := t.TempDir()
	_, _, c := newTestService(t, server.Config{Workers: 2, TraceDir: dir})
	resp, err := c.Solve(context.Background(), &client.SolveRequest{Rows: 32, Cols: 32, Mask: "W,N"})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "solve-"+jsonNumber(resp.ID)+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file for solve %d not written: %v", resp.ID, err)
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Errorf("trace file is not JSON: %v", err)
	}
}

func TestResponseCellCap(t *testing.T) {
	_, _, c := newTestService(t, server.Config{Workers: 2, MaxResponseCells: 64})
	// Under the cap: cells come back.
	small, err := c.Solve(context.Background(), &client.SolveRequest{Rows: 8, Cols: 8, ReturnCells: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Cells) != 8 {
		t.Errorf("under-cap solve returned %d rows of cells, want 8", len(small.Cells))
	}
	// Over the cap: digest only, no error.
	big, err := c.Solve(context.Background(), &client.SolveRequest{Rows: 16, Cols: 16, ReturnCells: true})
	if err != nil {
		t.Fatal(err)
	}
	if big.Cells != nil {
		t.Errorf("over-cap solve returned cells (%d rows); want digest only", len(big.Cells))
	}
	if big.Digest == "" {
		t.Error("over-cap solve missing digest")
	}
}

func TestInlineCellsValidation(t *testing.T) {
	_, ts, _ := newTestService(t, server.Config{Workers: 2, MaxInlineCells: 16})
	// Wrong kind for inline cells.
	resp := postJSON(t, ts.URL, `{"rows":2,"cols":2,"workload":{"kind":"mix","cells":[[1,2],[3,4]]}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("inline cells with mix kind: status %d, want 400", resp.StatusCode)
	}
	// Payload past the inline cap.
	resp = postJSON(t, ts.URL, `{"rows":5,"cols":5,"workload":{"kind":"cost","cells":[[1],[1],[1],[1],[1]]}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized inline payload: status %d, want 400", resp.StatusCode)
	}
	// Shape mismatch between cells and rows/cols.
	resp = postJSON(t, ts.URL, `{"rows":2,"cols":2,"workload":{"kind":"cost","cells":[[1,2]]}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("misshapen inline payload: status %d, want 400", resp.StatusCode)
	}
}
