package server_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/lddp/api"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden wire fixtures")

// goldenDocs are fixed instances of every wire type, with every field
// populated (zero values would vanish under omitempty and pin nothing).
// Their marshaled bytes are the wire contract: the fixtures were
// recorded when the types lived in lddp/client, so a diff here means
// the extraction into lddp/api (or any later edit) drifted the JSON
// wire format.
var goldenDocs = []struct {
	name string
	doc  any
}{
	{"solve_request", api.SolveRequest{
		Rows: 64, Cols: 48, Mask: "{W,N,NE}", Strategy: "parallel",
		Workload: api.WorkloadSpec{
			Kind: api.KindCost, Seed: 42,
			Cells: [][]int64{{1, 2}, {3, 4}},
		},
		Chunk: 128, DeadlineMS: 2500, ReturnCells: true,
	}},
	{"solve_response", api.SolveResponse{
		ID: 7, Status: "done", Cached: true, Rows: 64, Cols: 48,
		Mask: "{W,N,NE}", Pattern: "wavefront", Digest: "00deadbeef00cafe",
		Cells: [][]int64{{5, 6}}, ElapsedMS: 12.5,
	}},
	{"error_body", api.ErrorBody{
		Status: "rejected", Error: "admission queue full (depth 9)",
		ID: 3, RetryAfterMS: 1000,
	}},
	{"band_request", api.BandRequest{
		Rows: 64, Cols: 48, Row0: 16, Row1: 32, Col0: 8, Col1: 24,
		Mask: "{W,NW,N}", Strategy: "parallel",
		Workload:  api.WorkloadSpec{Kind: api.KindMix, Seed: 42},
		Chunk:     128, DeadlineMS: 2500,
		HaloNorth: []int64{9, 8, 7}, NorthLo: 7,
		HaloWest:  []int64{1, 2}, HaloEast: []int64{3, 4},
		Trace:     &api.TraceContext{FleetID: "f1a2b3-4", Band: 1, Phase: 2},
	}},
	{"band_response", api.BandResponse{
		ID: 11, Status: "done", Row0: 16, Row1: 32, Col0: 8, Col1: 24,
		Mask: "{W,NW,N}", Digest: "00deadbeef00cafe",
		Cells: [][]int64{{5, 6}}, ElapsedMS: 3.25,
	}},
}

// TestGoldenWireFixtures pins the exact JSON bytes of every wire type
// against testdata/golden/*.json. Run with -update to re-record after
// an intentional wire change (which needs a DESIGN.md §10 note and a
// compatibility story, not just a flag).
func TestGoldenWireFixtures(t *testing.T) {
	for _, g := range goldenDocs {
		t.Run(g.name, func(t *testing.T) {
			got, err := json.MarshalIndent(g.doc, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", g.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to record)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire bytes drifted from %s:\n got: %s\nwant: %s", path, got, want)
			}
		})
	}
}

// TestGoldenRoundTrip proves the fixtures decode back into the exact
// structs they were marshaled from — field renames that happen to keep
// the marshal shape (e.g. a swapped json tag pair) fail here.
func TestGoldenRoundTrip(t *testing.T) {
	for _, g := range goldenDocs {
		t.Run(g.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", g.name+".json")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to record)", err)
			}
			// Decode into a fresh value of the same dynamic type, then
			// compare re-marshaled bytes — struct equality via reflection
			// would miss nothing extra and needs no new dependencies.
			fresh := map[string]any{}
			if err := json.Unmarshal(raw, &fresh); err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(g.doc)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(fresh)
			if err != nil {
				t.Fatal(err)
			}
			var a, b any
			if err := json.Unmarshal(want, &a); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(got, &b); err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Errorf("fixture %s does not round-trip:\n got %s\nwant %s", path, got, want)
			}
		})
	}
}
