package server_test

import (
	"context"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"repro/internal/server"
	"repro/lddp"
	"repro/lddp/client"
)

// newBenchService is newTestService without t.Cleanup: the benchmark
// closes the stack explicitly so teardown stays outside the timer.
func newBenchService(b *testing.B, cfg server.Config, opts ...client.Option) (*server.Server, *httptest.Server, *client.Client) {
	b.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	c, err := client.New(ts.URL, append([]client.Option{client.WithRetry(client.RetryPolicy{MaxAttempts: 1})}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	return srv, ts, c
}

// BenchmarkServerSolveBatch8x512 measures server-mode throughput: a batch
// of concurrent solves through the full network stack (encode, HTTP
// round trip over loopback, handler validation, scheduler, digest,
// response) versus the same batch submitted straight to the facade — the
// spread between the sub-benchmarks is the wire tax. The variants pick
// apart the tax: "wire" is the JSON codec, "wire-binary" the frame
// codec (both cold: the result cache is disabled so every iteration
// solves), and "wire-cached" replays a warmed cache over the binary
// codec, measuring the service floor with the scheduler out of the
// picture. The per-op byte rate is table cells produced, mirroring
// BenchmarkSchedulerBatch16x1024.
func BenchmarkServerSolveBatch8x512(b *testing.B) {
	const (
		batch = 8
		size  = 512
		chunk = 128
	)
	workers := runtime.GOMAXPROCS(0)

	wireVariant := func(codec []client.Option, cacheBytes int64, warm bool) func(b *testing.B) {
		return func(b *testing.B) {
			srv, ts, c := newBenchService(b, server.Config{
				Workers: workers, Chunk: chunk, MaxInflight: batch,
				CacheBytes: cacheBytes,
			}, codec...)
			defer func() { c.Close(); ts.Close(); srv.Close() }()
			if warm {
				runWireBatch(b, c, batch, size)
			}
			b.SetBytes(int64(batch) * size * size * 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runWireBatch(b, c, batch, size)
			}
		}
	}
	binary := []client.Option{client.WithCodec(client.CodecBinary)}
	b.Run("wire", wireVariant(nil, -1, false))
	b.Run("wire-binary", wireVariant(binary, -1, false))
	b.Run("wire-cached", wireVariant(binary, server.DefaultCacheBytes, true))

	b.Run("direct", func(b *testing.B) {
		s, err := lddp.NewScheduler(lddp.WithSchedulerWorkers(workers), lddp.WithSchedulerChunk(chunk))
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.SetBytes(int64(batch) * size * size * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			errs := make([]error, batch)
			for k := 0; k < batch; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					p := server.MixProblem(int64(k), lddp.DepW|lddp.DepN, size, size)
					sub, err := lddp.Submit(context.Background(), s, p)
					if err != nil {
						errs[k] = err
						return
					}
					_, errs[k] = sub.Wait()
				}(k)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func runWireBatch(b *testing.B, c *client.Client, batch, size int) {
	b.Helper()
	var wg sync.WaitGroup
	errs := make([]error, batch)
	for k := 0; k < batch; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			_, errs[k] = c.Solve(context.Background(), &client.SolveRequest{
				Rows: size, Cols: size, Mask: "W,N",
				Workload: client.WorkloadSpec{Kind: client.KindMix, Seed: int64(k)},
			})
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
}
