package server_test

import (
	"context"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"repro/internal/server"
	"repro/lddp"
	"repro/lddp/client"
)

// newBenchService is newTestService without t.Cleanup: the benchmark
// closes the stack explicitly so teardown stays outside the timer.
func newBenchService(b *testing.B, cfg server.Config) (*server.Server, *httptest.Server, *client.Client) {
	b.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	c, err := client.New(ts.URL, client.WithRetry(client.RetryPolicy{MaxAttempts: 1}))
	if err != nil {
		b.Fatal(err)
	}
	return srv, ts, c
}

// BenchmarkServerSolveBatch8x512 measures server-mode throughput: a batch
// of concurrent solves through the full network stack (JSON encode, HTTP
// round trip over loopback, handler validation, scheduler, digest,
// response) versus the same batch submitted straight to the facade — the
// spread between the two sub-benchmarks is the wire tax. The per-op byte
// rate is table cells produced, mirroring BenchmarkSchedulerBatch16x1024.
func BenchmarkServerSolveBatch8x512(b *testing.B) {
	const (
		batch = 8
		size  = 512
		chunk = 128
	)
	workers := runtime.GOMAXPROCS(0)

	b.Run("wire", func(b *testing.B) {
		srv, ts, c := newBenchService(b, server.Config{
			Workers: workers, Chunk: chunk, MaxInflight: batch,
		})
		defer func() { c.Close(); ts.Close(); srv.Close() }()
		b.SetBytes(int64(batch) * size * size * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runWireBatch(b, c, batch, size)
		}
	})

	b.Run("direct", func(b *testing.B) {
		s, err := lddp.NewScheduler(lddp.WithSchedulerWorkers(workers), lddp.WithSchedulerChunk(chunk))
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.SetBytes(int64(batch) * size * size * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			errs := make([]error, batch)
			for k := 0; k < batch; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					p := server.MixProblem(int64(k), lddp.DepW|lddp.DepN, size, size)
					sub, err := lddp.Submit(context.Background(), s, p)
					if err != nil {
						errs[k] = err
						return
					}
					_, errs[k] = sub.Wait()
				}(k)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func runWireBatch(b *testing.B, c *client.Client, batch, size int) {
	b.Helper()
	var wg sync.WaitGroup
	errs := make([]error, batch)
	for k := 0; k < batch; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			_, errs[k] = c.Solve(context.Background(), &client.SolveRequest{
				Rows: size, Cols: size, Mask: "W,N",
				Workload: client.WorkloadSpec{Kind: client.KindMix, Seed: int64(k)},
			})
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
}
