package server

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"

	"repro/lddp"
)

// writePromMetrics renders the snapshot in the Prometheus text
// exposition format (version 0.0.4). The document is built in one
// buffer and written whole — a scrape must never observe a torn
// exposition. Metric names follow prometheus.io naming: lddpd_ prefix,
// _total on counters, base-unit seconds for durations. Every family is
// emitted unconditionally (zeros included): scrapers difference
// counters across time, and a family that appears only once traffic
// arrives breaks that.
func (s *Server) writePromMetrics(w http.ResponseWriter, snap *lddp.MetricsSnapshot) {
	var b bytes.Buffer
	p := promWriter{b: &b}

	p.counter("lddpd_solves_total", "Completed solves (successes and failures).", float64(snap.Solves))
	p.counter("lddpd_solve_errors_total", "Completed solves that returned an error.", float64(snap.Errors))

	p.counter("lddpd_sched_submitted_total", "Submissions admitted into the scheduler queue.", float64(snap.Sched.Submitted))
	p.counter("lddpd_sched_started_total", "Submissions a worker began executing.", float64(snap.Sched.Started))
	p.counter("lddpd_sched_done_total", "Submissions that completed successfully.", float64(snap.Sched.Done))
	p.counter("lddpd_sched_canceled_total", "Submissions interrupted mid-run by their context.", float64(snap.Sched.Canceled))
	p.counter("lddpd_sched_rejected_total", "Submissions refused admission.", float64(snap.Sched.Rejected))
	p.counter("lddpd_sched_steals_total", "Cross-solve worker steals.", float64(snap.Sched.Steals))
	p.gauge("lddpd_sched_queue_depth_peak", "High-water mark of the admission queue depth.", float64(snap.Sched.PeakQueueDepth))
	p.gauge("lddpd_sched_active_peak", "High-water mark of concurrently executing solves.", float64(snap.Sched.PeakActive))
	p.histogram("lddpd_sched_queue_wait_seconds", "Time submissions spent queued before a worker admitted them.", snap.Sched.QueueWait)
	p.histogram("lddpd_sched_solve_latency_seconds", "Submit-to-done latency of successful solves.", snap.Sched.SolveLatency)

	p.counter("lddpd_cache_hits_total", "Result-cache lookups served from cache.", float64(snap.Cache.Hits))
	p.counter("lddpd_cache_misses_total", "Result-cache lookups that found nothing.", float64(snap.Cache.Misses))
	p.counter("lddpd_cache_bypasses_total", "Result-cache lookups skipped by Cache-Control.", float64(snap.Cache.Bypasses))
	p.counter("lddpd_cache_stores_total", "Result-cache insertions.", float64(snap.Cache.Stores))
	p.counter("lddpd_cache_evictions_total", "Result-cache entries dropped under size pressure.", float64(snap.Cache.Evictions))
	p.gauge("lddpd_cache_entries", "Result-cache entries currently held.", float64(snap.Cache.Entries))
	p.gauge("lddpd_cache_bytes", "Result-cache bytes currently held.", float64(snap.Cache.Bytes))
	p.gauge("lddpd_cache_capacity_bytes", "Configured result-cache capacity.", float64(snap.Cache.CapacityBytes))

	p.typeLine("lddpd_wire_requests_total", "counter", "Request bodies decoded, by codec.")
	p.sample(`lddpd_wire_requests_total{codec="json"}`, float64(snap.Wire.JSONRequests))
	p.sample(`lddpd_wire_requests_total{codec="binary"}`, float64(snap.Wire.BinaryRequests))
	p.typeLine("lddpd_wire_responses_total", "counter", "Response bodies written, by codec.")
	p.sample(`lddpd_wire_responses_total{codec="json"}`, float64(snap.Wire.JSONResponses))
	p.sample(`lddpd_wire_responses_total{codec="binary"}`, float64(snap.Wire.BinaryResponses))
	p.counter("lddpd_wire_binary_rejects_total", "Binary request frames the decoder refused.", float64(snap.Wire.BinaryRejects))
	p.counter("lddpd_wire_request_bytes_total", "Solve and band-solve request body bytes read.", float64(snap.Wire.RequestBytes))
	p.counter("lddpd_wire_response_bytes_total", "Solve and band-solve response body bytes written.", float64(snap.Wire.ResponseBytes))
	p.counter("lddpd_halo_values_total", "Halo values received in band requests.", float64(snap.Wire.HaloValues))
	p.counter("lddpd_halo_bytes_total", "Encoded volume of halo values received in band requests.", float64(snap.Wire.HaloBytes))

	p.gauge("lddpd_inflight_solves", "Solve requests currently holding an admission slot.", float64(snap.Server.InflightSolves))
	p.gauge("lddpd_draining", "1 once drain began, 0 while serving.", float64(snap.Server.Draining))
	p.counter("lddpd_trace_dropped_events_total", "Trace events lost to ring-buffer overwrites.", float64(snap.Server.TraceDroppedEvents))
	p.counter("lddpd_trace_solves_total", "Solve trace files written to -tracedir.", float64(snap.Server.TraceSolves))
	p.gauge("lddpd_trace_fleets", "Fleet solves currently indexed for /v1/trace.", float64(snap.Server.TraceFleets))

	p.counter("lddpd_fleet_solves_total", "Fleet solves coordinated by this node.", float64(snap.Fleet.Solves))
	p.counter("lddpd_fleet_blocks_total", "Block round trips issued by this node's coordinator.", float64(snap.Fleet.Blocks))
	p.counter("lddpd_fleet_relocations_total", "Blocks retried on a different node after a relocatable failure.", float64(snap.Fleet.Relocations))
	p.counter("lddpd_fleet_halo_values_total", "Halo values sliced into outgoing band requests.", float64(snap.Fleet.HaloValues))
	p.counter("lddpd_fleet_halo_bytes_total", "Encoded volume of halos sliced into outgoing band requests.", float64(snap.Fleet.HaloBytes))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := w.Write(b.Bytes()); err != nil {
		s.logf("writing /metrics exposition: %v", err)
	}
}

// promWriter accumulates exposition lines.
type promWriter struct {
	b *bytes.Buffer
}

func (p *promWriter) typeLine(name, typ, help string) {
	fmt.Fprintf(p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) sample(series string, v float64) {
	fmt.Fprintf(p.b, "%s %s\n", series, promFloat(v))
}

func (p *promWriter) counter(name, help string, v float64) {
	p.typeLine(name, "counter", help)
	p.sample(name, v)
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.typeLine(name, "gauge", help)
	p.sample(name, v)
}

// histogram renders one lddp.Hist as a cumulative Prometheus histogram,
// bounds converted from nanoseconds to seconds. An unused histogram
// still exposes its full bucket layout (all zeros) so scrapers see a
// stable series set.
func (p *promWriter) histogram(name, help string, h lddp.Hist) {
	p.typeLine(name, "histogram", help)
	bounds := h.BoundsNS
	counts := h.Counts
	if bounds == nil {
		zero := lddp.Hist{}
		zero.Observe(0)
		bounds = zero.BoundsNS
		counts = make([]int64, len(bounds)+1)
	}
	var cum int64
	for i, bound := range bounds {
		cum += counts[i]
		fmt.Fprintf(p.b, "%s_bucket{le=%q} %d\n", name, promFloat(float64(bound)/1e9), cum)
	}
	cum += counts[len(bounds)]
	fmt.Fprintf(p.b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(p.b, "%s_sum %s\n", name, promFloat(float64(h.SumNS)/1e9))
	fmt.Fprintf(p.b, "%s_count %d\n", name, h.Count)
}

// promFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation, integers without an exponent where
// possible.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
