package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"repro/lddp"
	"repro/lddp/api"
)

// Config configures a Server. The zero value selects all defaults.
type Config struct {
	// Workers, Queue, MaxActive and Chunk configure the underlying
	// shared scheduler (lddp.NewScheduler semantics: <= 0 selects the
	// scheduler defaults).
	Workers, Queue, MaxActive, Chunk int

	// MaxInflight bounds the solve requests admitted concurrently,
	// in front of the scheduler's own queue: past it the server answers
	// 429 immediately instead of deepening the queue. <= 0 selects
	// 4 * the resolved worker count.
	MaxInflight int

	// MaxCells, MaxInlineCells, MaxResponseCells and MaxBodyBytes are
	// the request-validation caps; <= 0 selects the Default* constants.
	MaxCells         int64
	MaxInlineCells   int
	MaxResponseCells int
	MaxBodyBytes     int64

	// RetryAfter is the pushback hint attached to 429/503 responses.
	// <= 0 selects one second.
	RetryAfter time.Duration

	// CacheBytes bounds the content-addressed result cache: completed
	// solves of declarative workloads are kept (LRU, size-aware) and
	// repeated requests answer without touching the scheduler. 0 selects
	// DefaultCacheBytes; negative disables the cache entirely.
	// Cache-Control: no-cache on a request bypasses the lookup,
	// no-store additionally skips the insert.
	CacheBytes int64

	// ErrorLog receives handler-level write failures (an encode error on
	// an already-started response can only be logged and aborted). Nil
	// selects log.Default().
	ErrorLog *log.Logger

	// TraceDir, when non-empty, records a runtime trace of every solve
	// and writes it as <TraceDir>/solve-<id>.json (Chrome/Perfetto
	// trace-event JSON, the lddptrace input format).
	TraceDir string

	// Metrics receives the scheduler's Collector and SchedCollector
	// streams and backs GET /metrics. Nil allocates a fresh one.
	Metrics *lddp.Metrics

	// ExtraMetrics, when non-nil, runs at /metrics scrape time to fill
	// snapshot sections owned outside the server — the fleet
	// coordinator's counters on nodes running one (cmd/lddpd wires
	// fleet.Handler's snapshot through here, keeping the server free of
	// a fleet dependency).
	ExtraMetrics func(*lddp.MetricsSnapshot)

	// Hooks are deterministic fault points for tests and the scenario
	// engine; the zero value is inert.
	Hooks Hooks
}

// Hooks exposes fixed points in the request lifecycle so fault
// injection can act at an exact moment instead of racing the handler —
// the scenario engine (internal/sim) parks admitted requests here to
// saturate the in-flight limiter deterministically, and kills or drains
// nodes "mid-solve" with the solve provably in the handler. Callbacks
// run on the handler goroutine: anything slow or blocking extends the
// request (and its limiter slot) by exactly that long, which is the
// point.
type Hooks struct {
	// OnSolveAdmitted runs after a solve or band-solve request clears
	// the in-flight limiter, before parsing; band reports which handler
	// admitted it.
	OnSolveAdmitted func(band bool)
}

// withDefaults resolves zero fields to the documented defaults.
func (c Config) withDefaults() Config {
	if c.MaxCells <= 0 {
		c.MaxCells = DefaultMaxCells
	}
	if c.MaxInlineCells <= 0 {
		c.MaxInlineCells = DefaultMaxInlineCells
	}
	if c.MaxResponseCells <= 0 {
		c.MaxResponseCells = DefaultMaxResponseCells
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.Metrics == nil {
		c.Metrics = &lddp.Metrics{}
	}
	if c.ErrorLog == nil {
		c.ErrorLog = log.Default()
	}
	return c
}

// Server is the lddpd solve service: HTTP handlers over one shared
// scheduler. Construct with New, mount Handler on an http.Server, and
// shut down with BeginDrain/Drain/Close (in that order — cmd/lddpd shows
// the full sequence). All methods are safe for concurrent use.
type Server struct {
	cfg   Config
	sched *lddp.Scheduler
	cache *resultCache // nil when disabled

	inflight  chan struct{} // bounded in-flight limiter tokens
	active    atomic.Int64  // solve requests currently inside the handler
	draining  atomic.Bool
	wireStats wireStats

	traces       *traceIndex // nil when TraceDir is empty
	traceSolves  atomic.Int64
	traceDropped atomic.Int64
}

// wireStats counts request/response codec traffic for the metrics
// snapshot's Wire section.
type wireStats struct {
	jsonRequests    atomic.Int64
	binaryRequests  atomic.Int64
	jsonResponses   atomic.Int64
	binaryResponses atomic.Int64
	binaryRejects   atomic.Int64
	requestBytes    atomic.Int64
	responseBytes   atomic.Int64
	haloValues      atomic.Int64
	haloBytes       atomic.Int64
}

func (ws *wireStats) snapshot() lddp.WireSnapshot {
	return lddp.WireSnapshot{
		JSONRequests:    ws.jsonRequests.Load(),
		BinaryRequests:  ws.binaryRequests.Load(),
		JSONResponses:   ws.jsonResponses.Load(),
		BinaryResponses: ws.binaryResponses.Load(),
		BinaryRejects:   ws.binaryRejects.Load(),
		RequestBytes:    ws.requestBytes.Load(),
		ResponseBytes:   ws.responseBytes.Load(),
		HaloValues:      ws.haloValues.Load(),
		HaloBytes:       ws.haloBytes.Load(),
	}
}

// countingReader counts body bytes actually consumed into a wireStats
// counter; it wraps the (already size-capped) request body.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

func (c *countingReader) Close() error {
	if rc, ok := c.r.(io.Closer); ok {
		return rc.Close()
	}
	return nil
}

// countingResponseWriter counts response body bytes written. It
// forwards Flush so the binary band encoder's chunk flushing keeps
// working through the wrapper.
type countingResponseWriter struct {
	http.ResponseWriter
	n *atomic.Int64
}

func (c *countingResponseWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.n.Add(int64(n))
	return n, err
}

func (c *countingResponseWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logf reports a handler-level failure on the configured error log.
func (s *Server) logf(format string, args ...any) {
	s.cfg.ErrorLog.Printf("lddpd: "+format, args...)
}

// New builds a Server and starts its scheduler.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s, err := lddp.NewScheduler(
		lddp.WithSchedulerWorkers(cfg.Workers),
		lddp.WithSchedulerQueue(cfg.Queue),
		lddp.WithSchedulerMaxActive(cfg.MaxActive),
		lddp.WithSchedulerChunk(cfg.Chunk),
		lddp.WithSchedulerCollector(cfg.Metrics),
	)
	if err != nil {
		return nil, err
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4 * s.Config().Workers
	}
	srv := &Server{
		cfg:      cfg,
		sched:    s,
		cache:    newResultCache(cfg.CacheBytes),
		inflight: make(chan struct{}, cfg.MaxInflight),
	}
	if cfg.TraceDir != "" {
		srv.traces = newTraceIndex()
	}
	return srv, nil
}

// CacheStats returns the result cache's counters (all-zero when the
// cache is disabled).
func (s *Server) CacheStats() lddp.CacheSnapshot { return s.cache.stats() }

// WireStats returns the codec traffic counters.
func (s *Server) WireStats() lddp.WireSnapshot { return s.wireStats.snapshot() }

// Config returns the resolved configuration.
func (s *Server) Config() Config { return s.cfg }

// Metrics returns the server's metrics collector.
func (s *Server) Metrics() *lddp.Metrics { return s.cfg.Metrics }

// Handler returns the service mux. Every endpoint lives under the /v1
// prefix — POST /v1/solve, POST /v1/band/solve, GET /v1/healthz,
// GET /v1/readyz, GET /v1/metrics (JSON by default,
// ?format=prometheus for text exposition), GET /v1/trace/{fleetID} —
// with the pre-versioning operational
// paths (/healthz, /readyz, /metrics) kept as aliases so existing
// probes and scrapers keep working. Unknown paths answer a JSON
// ErrorBody 404, not the text/plain default: every consumer of this
// service parses ErrorBody on failure, and a route typo should produce
// the same shape as every other refusal.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/band/solve", s.handleBandSolve)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/readyz", s.handleReadyz)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/trace/", s.handleTrace)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/", s.handleNotFound)
	return mux
}

// handleNotFound is the mux fallback: a JSON ErrorBody 404 naming the
// unmatched path.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	s.writeError(w, http.StatusNotFound, "not_found", 0,
		fmt.Sprintf("no route %s %s", r.Method, r.URL.Path))
}

// BeginDrain flips the server into draining: GET /readyz answers 503 (so
// load balancers stop routing here) and new solve submissions are
// refused with 503, while already-admitted solves run to completion.
// Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// ActiveRequests returns the number of solve requests currently being
// served (admitted past the limiter, response not yet written).
func (s *Server) ActiveRequests() int { return int(s.active.Load()) }

// Drain flips the server into draining and waits until every in-flight
// solve request has finished, or ctx ends — the bounded-drain step
// between "stop accepting" and Close. It returns ctx's cause when the
// bound expires with solves still running.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for s.active.Load() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain expired with %d solves in flight: %w", s.active.Load(), context.Cause(ctx))
		case <-tick.C:
		}
	}
	return nil
}

// Close shuts the scheduler down (draining its admitted solves) and
// releases the server's resources. Call after Drain; a Close with
// requests still in flight lets them finish against the closing
// scheduler, which maps to 503s.
func (s *Server) Close() { s.sched.Close() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics serves the metrics snapshot: compact JSON by default (a
// scrape endpoint is machine-read; pretty-printing every scrape re-buys
// the indent cost for nothing — pipe through jq to eyeball it),
// Prometheus text exposition under ?format=prometheus. Both render the
// same snapshot, extended at scrape time with the sections that live
// server-side (cache, codec counters, process gauges, and — through the
// ExtraMetrics hook — the fleet coordinator's). Snapshot copies under
// the Metrics mutex and marshals outside it, so a slow scraper never
// holds up the scheduler's event stream.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.cfg.Metrics.Snapshot()
	snap.Cache = s.cache.stats()
	snap.Wire = s.wireStats.snapshot()
	snap.Server = lddp.ServerSnapshot{
		InflightSolves:     s.active.Load(),
		TraceDroppedEvents: s.traceDropped.Load(),
		TraceSolves:        s.traceSolves.Load(),
	}
	if s.draining.Load() {
		snap.Server.Draining = 1
	}
	if s.traces != nil {
		snap.Server.TraceFleets = int64(s.traces.size())
	}
	if s.cfg.ExtraMetrics != nil {
		s.cfg.ExtraMetrics(&snap)
	}
	if r.URL.Query().Get("format") == "prometheus" {
		s.writePromMetrics(w, &snap)
		return
	}
	doc, err := json.Marshal(snap)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(append(doc, '\n')); err != nil {
		s.logf("writing /metrics: %v", err)
	}
}

// writeError renders one ErrorBody with the mapped HTTP status; 429 and
// 503 carry the Retry-After pushback in both header (whole seconds,
// rounded up) and body (milliseconds).
func (s *Server) writeError(w http.ResponseWriter, code int, status string, id int64, msg string) {
	body := api.ErrorBody{Status: status, Error: msg, ID: id}
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		body.RetryAfterMS = s.cfg.RetryAfter.Milliseconds()
		secs := int64((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	if id > 0 {
		w.Header().Set(api.SolveIDHeader, strconv.FormatInt(id, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		// The status line is out; a failed body write means the client is
		// gone. Log and abort — writing more would interleave garbage.
		s.logf("writing %d error body: %v", code, err)
	}
}

// handleSolve runs one POST /v1/solve request end to end: limiter,
// codec negotiation, decode, validate, build, result-cache lookup,
// submit with the request context (plus the optional deadline), and map
// the scheduler's outcome trichotomy onto the wire:
//
//	done                          -> 200 SolveResponse
//	*Rejected (queue full)        -> 429 + Retry-After
//	*Rejected (closed / draining) -> 503 + Retry-After
//	*Rejected (deadline queued)   -> 408
//	*Canceled (deadline mid-run)  -> 408
//	*Canceled (caller went away)  -> 499 (best-effort; nobody is reading)
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "invalid", 0, "POST required")
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining", 0, "server is draining")
		return
	}
	// The in-flight limiter sits in front of scheduler admission: a
	// saturated service answers immediately instead of stacking HTTP
	// handlers behind the scheduler queue.
	select {
	case s.inflight <- struct{}{}:
	default:
		s.writeError(w, http.StatusTooManyRequests, "rejected", 0,
			fmt.Sprintf("server at its in-flight limit (%d)", s.cfg.MaxInflight))
		return
	}
	s.active.Add(1)
	defer func() {
		s.active.Add(-1)
		<-s.inflight
	}()
	if s.cfg.Hooks.OnSolveAdmitted != nil {
		s.cfg.Hooks.OnSolveAdmitted(false)
	}

	w = &countingResponseWriter{ResponseWriter: w, n: &s.wireStats.responseBytes}
	neg := negotiate(r)
	r.Body = &countingReader{
		r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes),
		n: &s.wireStats.requestBytes,
	}
	var req *api.SolveRequest
	var err error
	releaseInline := func() {}
	if neg.binaryRequest {
		s.wireStats.binaryRequests.Add(1)
		req, releaseInline, err = ParseBinaryRequest(r.Body, s.cfg.MaxInlineCells)
		if err != nil {
			s.wireStats.binaryRejects.Add(1)
		}
	} else {
		s.wireStats.jsonRequests.Add(1)
		req, err = ParseSolveRequest(r.Body)
	}
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid", 0, err.Error())
		return
	}
	if err := s.ValidateRequest(req); err != nil {
		releaseInline()
		code := http.StatusBadRequest
		if int64(req.Rows)*int64(req.Cols) > s.cfg.MaxCells && req.Rows > 0 && req.Cols > 0 {
			code = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, code, "invalid", 0, err.Error())
		return
	}
	problem, err := BuildProblem(req)
	if err != nil {
		releaseInline()
		s.writeError(w, http.StatusBadRequest, "invalid", 0, err.Error())
		return
	}
	includeCells := req.ReturnCells && int64(problem.Rows)*int64(problem.Cols) <= int64(s.cfg.MaxResponseCells)

	// Result-cache lookup: workloads are declarative, so the key tuple
	// identifies the result exactly; a hit answers without touching the
	// scheduler.
	start := time.Now()
	key := keyForRequest(req, problem.Deps)
	if s.cache != nil {
		if neg.noCache {
			s.cache.bypass()
			w.Header().Set(CacheHeader, "bypass")
		} else if e := s.cache.get(key); e != nil {
			releaseInline()
			w.Header().Set(CacheHeader, "hit")
			resp := &api.SolveResponse{
				ID: e.id, Status: "done", Cached: true,
				Rows: problem.Rows, Cols: problem.Cols,
				Mask: e.mask, Pattern: e.pattern, Digest: e.digest,
				ElapsedMS: float64(time.Since(start).Nanoseconds()) / 1e6,
			}
			s.writeSolveResponse(w, neg, resp, e.cells, includeCells)
			return
		} else {
			w.Header().Set(CacheHeader, "miss")
		}
	}

	ctx := r.Context()
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	opts := []lddp.Option{}
	switch req.Strategy {
	case "parallel":
		opts = append(opts, lddp.WithStrategy(lddp.Parallel))
	case "async":
		opts = append(opts, lddp.WithStrategy(lddp.Async))
	}
	if req.Chunk > 0 {
		opts = append(opts, lddp.WithChunk(req.Chunk))
	}
	var tracer *lddp.Tracer
	if s.cfg.TraceDir != "" {
		tracer = lddp.NewTracer()
		opts = append(opts, lddp.WithTracer(tracer))
	}

	sub, err := lddp.Submit(ctx, s.sched, problem, opts...)
	if err != nil {
		s.writeSubmitError(w, r, err)
		return
	}
	id := sub.ID()
	grid, err := sub.Wait()
	if tracer != nil {
		s.writeTraceFile(id, tracer)
	}
	if err != nil {
		// No releaseInline here: on a cancellation the scheduler's
		// workers may still be quiescing against the problem's inline
		// cells, so the buffer is left to the garbage collector.
		s.writeOutcomeError(w, r, id, err)
		return
	}
	flat := flatCells(grid)
	digest := DigestCells(problem.Rows, problem.Cols, flat)
	releaseInline()
	elapsed := time.Since(start)

	resp := &api.SolveResponse{
		ID:        id,
		Status:    "done",
		Rows:      problem.Rows,
		Cols:      problem.Cols,
		Mask:      problem.Deps.String(),
		Pattern:   lddp.Classify(problem.Deps).String(),
		Digest:    digest,
		ElapsedMS: float64(elapsed.Nanoseconds()) / 1e6,
	}
	if s.cache != nil && !neg.noStore {
		// The entry takes ownership of the grid's backing slice: result
		// grids are immutable after Wait, so no copy is needed.
		s.cache.put(&cacheEntry{
			key: key, id: id, cells: flat,
			digest: digest, pattern: resp.Pattern, mask: resp.Mask,
		})
	}
	s.writeSolveResponse(w, neg, resp, flat, includeCells)
}

// flatCells returns the grid's row-major cells, borrowing the backing
// slice when the layout allows (the scheduler path always does) and
// copying otherwise.
func flatCells(g *lddp.Grid[int64]) []int64 {
	if flat := g.RowMajorData(); flat != nil {
		return flat
	}
	flat := make([]int64, 0, g.Rows()*g.Cols())
	for i := 0; i < g.Rows(); i++ {
		for j := 0; j < g.Cols(); j++ {
			flat = append(flat, g.At(i, j))
		}
	}
	return flat
}

// writeSubmitError maps a synchronous Submit refusal onto the wire.
func (s *Server) writeSubmitError(w http.ResponseWriter, r *http.Request, err error) {
	var rej *lddp.Rejected
	switch {
	case errors.Is(err, lddp.ErrQueueFull):
		var id int64
		msg := "admission queue full"
		if errors.As(err, &rej) {
			id = rej.ID
			msg = fmt.Sprintf("admission queue full (depth %d)", rej.QueueDepth)
		}
		s.writeError(w, http.StatusTooManyRequests, "rejected", id, msg)
	case errors.Is(err, lddp.ErrSchedulerClosed):
		s.writeError(w, http.StatusServiceUnavailable, "draining", 0, "scheduler closed")
	case errors.As(err, &rej):
		// Rejected for a context cause: the deadline (or the caller)
		// ended the request before admission.
		s.writeTimeout(w, r, rej.ID, "rejected", err)
	default:
		// Validation errors from the problem or options.
		s.writeError(w, http.StatusBadRequest, "invalid", 0, err.Error())
	}
}

// writeOutcomeError maps a post-admission failure (Wait's trichotomy
// minus success) onto the wire.
func (s *Server) writeOutcomeError(w http.ResponseWriter, r *http.Request, id int64, err error) {
	var rej *lddp.Rejected
	var can *lddp.Canceled
	switch {
	case errors.Is(err, lddp.ErrQueueFull):
		s.writeError(w, http.StatusTooManyRequests, "rejected", id, err.Error())
	case errors.Is(err, lddp.ErrSchedulerClosed):
		s.writeError(w, http.StatusServiceUnavailable, "draining", id, "scheduler closed")
	case errors.As(err, &can):
		s.writeTimeout(w, r, id, "canceled", err)
	case errors.As(err, &rej):
		s.writeTimeout(w, r, id, "rejected", err)
	default:
		s.writeError(w, http.StatusInternalServerError, "error", id, err.Error())
	}
}

// writeTimeout distinguishes the solve deadline expiring (408 — the
// request's own budget ran out) from the caller abandoning the request
// (499, nginx-style; the response is best-effort since nobody is
// reading).
func (s *Server) writeTimeout(w http.ResponseWriter, r *http.Request, id int64, status string, err error) {
	code := http.StatusRequestTimeout
	if r.Context().Err() != nil && !errors.Is(err, context.DeadlineExceeded) {
		code = 499
	}
	s.writeError(w, code, status, id, err.Error())
}

// writeTraceFile persists one solve's trace, best-effort: a full disk or
// bad TraceDir must not fail the solve that produced the trace. It also
// feeds the trace-loss counter — ring overwrites are invisible in the
// file itself until an analysis comes up short, so they surface in the
// metrics snapshot instead. Returns the file path ("" when nothing was
// written) so band solves can index it under their fleet ID.
func (s *Server) writeTraceFile(id int64, tracer *lddp.Tracer) string {
	s.traceDropped.Add(tracer.Dropped())
	path := filepath.Join(s.cfg.TraceDir, fmt.Sprintf("solve-%d.json", id))
	f, err := os.Create(path)
	if err != nil {
		return ""
	}
	defer f.Close()
	if err := lddp.WriteTrace(f, tracer); err != nil {
		return ""
	}
	s.traceSolves.Add(1)
	return path
}
