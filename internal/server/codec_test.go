// Codec negotiation edge cases: media-type matching with parameters and
// casing, the JSON default, binary request framing errors (always
// answered with JSON error bodies), and response codec selection.
package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/internal/wire"
	"repro/lddp/client"
)

// postSolve sends a raw body with explicit codec headers.
func postSolve(t *testing.T, url string, contentType, accept string, body []byte) *http.Response {
	t.Helper()
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		hreq.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		hreq.Header.Set("Accept", accept)
	}
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return hresp
}

// frameRequest renders req as a binary wire frame.
func frameRequest(t *testing.T, req *client.SolveRequest) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := wire.NewEncoder(&buf)
	hdr := *req
	hdr.Workload.Cells = nil
	if err := enc.Header(&hdr); err != nil {
		t.Fatal(err)
	}
	if len(req.Workload.Cells) > 0 {
		var flat []int64
		for _, row := range req.Workload.Cells {
			flat = append(flat, row...)
		}
		if err := enc.Cells(flat); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func jsonBody(t *testing.T, req *client.SolveRequest) []byte {
	t.Helper()
	doc, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestNegotiationResponseCodec: the response codec follows Accept —
// including parameters, q-values (treated as plain tokens), casing, and
// position in the list — while anything else stays JSON.
func TestNegotiationResponseCodec(t *testing.T) {
	_, ts, _ := newTestService(t, server.Config{Workers: 2, CacheBytes: -1})
	req := mixReq(21, 4, 4)
	req.ReturnCells = true

	cases := []struct {
		name        string
		contentType string
		accept      string
		wantBinary  bool
	}{
		{"json-default", "application/json", "", false},
		{"accept-json", "application/json", "application/json", false},
		{"accept-binary", "application/json", wire.MediaType, true},
		{"accept-binary-among-others", "application/json", "application/json, " + wire.MediaType, true},
		{"accept-binary-with-q", "application/json", wire.MediaType + ";q=0.9, application/json", true},
		{"accept-binary-upper", "application/json", strings.ToUpper(wire.MediaType), true},
		{"accept-star-stays-json", "application/json", "*/*", false},
		{"content-type-params-ignored", "application/json; charset=utf-8", "", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hresp := postSolve(t, ts.URL, tc.contentType, tc.accept, jsonBody(t, req))
			defer hresp.Body.Close()
			if hresp.StatusCode != http.StatusOK {
				raw, _ := io.ReadAll(hresp.Body)
				t.Fatalf("status %d: %s", hresp.StatusCode, raw)
			}
			gotBinary := strings.HasPrefix(hresp.Header.Get("Content-Type"), wire.MediaType)
			if gotBinary != tc.wantBinary {
				t.Fatalf("Content-Type %q: binary=%v, want %v", hresp.Header.Get("Content-Type"), gotBinary, tc.wantBinary)
			}
			if tc.wantBinary {
				d := wire.NewDecoder(hresp.Body)
				hdr, err := d.Header()
				if err != nil {
					t.Fatalf("decoding frame header: %v", err)
				}
				var out client.SolveResponse
				if err := json.Unmarshal(hdr, &out); err != nil {
					t.Fatalf("frame header is not a SolveResponse: %v", err)
				}
				cells, err := d.Cells(nil)
				if err != nil {
					t.Fatalf("decoding frame cells: %v", err)
				}
				if err := d.Close(); err != nil {
					t.Fatalf("frame digest: %v", err)
				}
				if len(cells) != 16 {
					t.Fatalf("frame carries %d cells, want 16", len(cells))
				}
			}
		})
	}
}

// TestNegotiationBinaryRequest: a framed request body decodes when
// Content-Type is the frame media type (parameters and case ignored),
// and produces identical results to its JSON twin.
func TestNegotiationBinaryRequest(t *testing.T) {
	_, ts, _ := newTestService(t, server.Config{Workers: 2, CacheBytes: -1})
	req := &client.SolveRequest{
		Rows: 3, Cols: 3, Mask: "W,N", ReturnCells: true,
		Workload: client.WorkloadSpec{Kind: client.KindCost, Cells: [][]int64{
			{1, 2, 3}, {4, 5, 6}, {7, 8, 9},
		}},
	}
	decode := func(hresp *http.Response) *client.SolveResponse {
		t.Helper()
		defer hresp.Body.Close()
		if hresp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(hresp.Body)
			t.Fatalf("status %d: %s", hresp.StatusCode, raw)
		}
		var out client.SolveResponse
		if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return &out
	}
	viaJSON := decode(postSolve(t, ts.URL, "application/json", "", jsonBody(t, req)))
	frame := frameRequest(t, req)
	for _, ct := range []string{wire.MediaType, wire.MediaType + "; v=1", strings.ToUpper(wire.MediaType)} {
		viaFrame := decode(postSolve(t, ts.URL, ct, "", frame))
		if viaFrame.Digest != viaJSON.Digest {
			t.Errorf("Content-Type %q: frame digest %s != JSON digest %s", ct, viaFrame.Digest, viaJSON.Digest)
		}
	}
}

// TestNegotiationBinaryErrors: malformed frames and version mismatches
// answer 400 with a JSON ErrorBody (never a binary error frame), even
// when the client accepts binary; the reject counter records them.
func TestNegotiationBinaryErrors(t *testing.T) {
	srv, ts, _ := newTestService(t, server.Config{Workers: 2})

	checkInvalid := func(t *testing.T, body []byte) {
		t.Helper()
		hresp := postSolve(t, ts.URL, wire.MediaType, wire.MediaType, body)
		defer hresp.Body.Close()
		if hresp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", hresp.StatusCode)
		}
		if ct := hresp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("error Content-Type %q, want application/json", ct)
		}
		var out client.ErrorBody
		if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
			t.Fatalf("error body does not decode: %v", err)
		}
		if out.Status != "invalid" || out.Error == "" {
			t.Fatalf("error body = %+v, want status invalid with a message", out)
		}
	}

	t.Run("version-mismatch", func(t *testing.T) {
		frame := frameRequest(t, mixReq(1, 4, 4))
		frame[0] = wire.Version + 1
		checkInvalid(t, frame)
	})
	t.Run("json-body-with-binary-content-type", func(t *testing.T) {
		// A JSON document starts with '{' (0x7b), which is not a frame
		// version — the likeliest misconfiguration, caught at byte 0.
		checkInvalid(t, jsonBody(t, mixReq(1, 4, 4)))
	})
	t.Run("truncated-frame", func(t *testing.T) {
		frame := frameRequest(t, mixReq(1, 4, 4))
		checkInvalid(t, frame[:len(frame)-3])
	})
	t.Run("corrupt-digest", func(t *testing.T) {
		req := &client.SolveRequest{
			Rows: 2, Cols: 2, Mask: "W",
			Workload: client.WorkloadSpec{Kind: client.KindCost, Cells: [][]int64{{1, 2}, {3, 4}}},
		}
		frame := frameRequest(t, req)
		frame[len(frame)-1] ^= 0x40
		checkInvalid(t, frame)
	})
	t.Run("cells-in-header-and-section", func(t *testing.T) {
		// Hand-build a frame whose header keeps inline cells AND whose
		// cell section carries a payload: ambiguous, must be rejected.
		req := &client.SolveRequest{
			Rows: 2, Cols: 2, Mask: "W",
			Workload: client.WorkloadSpec{Kind: client.KindCost, Cells: [][]int64{{1, 2}, {3, 4}}},
		}
		var buf bytes.Buffer
		enc := wire.NewEncoder(&buf)
		if err := enc.Header(req); err != nil {
			t.Fatal(err)
		}
		if err := enc.Cells([]int64{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
		if err := enc.Close(); err != nil {
			t.Fatal(err)
		}
		checkInvalid(t, buf.Bytes())
	})

	if stats := srv.WireStats(); stats.BinaryRejects < 5 {
		t.Errorf("binary rejects = %d, want at least 5", stats.BinaryRejects)
	}
}
