package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/wire"
	"repro/lddp/api"
)

// negotiation is the per-request codec decision, read once from the
// request headers before the body is touched.
type negotiation struct {
	// binaryRequest: the body is a wire frame (Content-Type matched
	// wire.MediaType). Anything else is decoded as JSON, the default.
	binaryRequest bool
	// binaryResponse: the Accept list offered wire.MediaType, so the 200
	// body is a frame. Error bodies stay JSON either way — a failure
	// must be readable with curl.
	binaryResponse bool
	// noCache skips the result-cache lookup (Cache-Control: no-cache);
	// noStore additionally skips the insert (no-store implies both).
	noCache bool
	noStore bool
}

// negotiate reads the codec and cache headers. Negotiation is
// deliberately simple: exact media-type tokens, no q-values — the only
// two parties are this server and lddp/client, and JSON stays the
// default for everything else (curl, proxies, old clients).
func negotiate(r *http.Request) negotiation {
	var n negotiation
	n.binaryRequest = mediaTypeIs(r.Header.Get("Content-Type"), wire.MediaType)
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		if mediaTypeIs(part, wire.MediaType) {
			n.binaryResponse = true
			break
		}
	}
	for _, part := range strings.Split(r.Header.Get("Cache-Control"), ",") {
		switch strings.ToLower(strings.TrimSpace(part)) {
		case "no-cache":
			n.noCache = true
		case "no-store":
			n.noCache = true
			n.noStore = true
		}
	}
	return n
}

// mediaTypeIs reports whether the media type of a Content-Type/Accept
// element (parameters stripped) equals want, case-insensitively.
func mediaTypeIs(v, want string) bool {
	if i := strings.IndexByte(v, ';'); i >= 0 {
		v = v[:i]
	}
	return strings.EqualFold(strings.TrimSpace(v), want)
}

// CacheHeader is the response header reporting the result-cache outcome
// of a 200: "hit", "miss", or "bypass" (lookup skipped on request).
const CacheHeader = api.CacheHeader

// ParseBinaryRequest decodes one wire-frame solve request body. The
// frame header is the SolveRequest JSON document (same strictness as
// the JSON codec: unknown fields are rejected) and the cell section
// carries the inline cost payload, row-major. maxInline caps the cell
// count. The returned release func returns the pooled cell buffer; it
// must be called exactly once, only after nothing references the
// request's inline cells anymore (after the solve completes), and never
// on paths where the solve may still be running.
func ParseBinaryRequest(r io.Reader, maxInline int) (req *api.SolveRequest, release func(), err error) {
	d := wire.NewDecoder(r)
	defer d.Release()
	d.SetMaxHeaderBytes(1 << 20)
	d.SetMaxCells(int64(maxInline))
	hdr, err := d.Header()
	if err != nil {
		return nil, nil, fmt.Errorf("decoding request frame: %w", err)
	}
	req = new(api.SolveRequest)
	dec := json.NewDecoder(bytes.NewReader(hdr))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		return nil, nil, fmt.Errorf("decoding request header: %w", err)
	}
	if dec.More() {
		return nil, nil, fmt.Errorf("request header holds more than one JSON document")
	}
	flat, err := d.Cells(wire.GetCells(0))
	if err != nil {
		wire.PutCells(flat)
		return nil, nil, fmt.Errorf("decoding request cells: %w", err)
	}
	if err := d.Close(); err != nil {
		wire.PutCells(flat)
		return nil, nil, fmt.Errorf("verifying request frame: %w", err)
	}
	if len(flat) == 0 {
		wire.PutCells(flat)
		return req, func() {}, nil
	}
	if req.Workload.Cells != nil {
		wire.PutCells(flat)
		return nil, nil, fmt.Errorf("request carries cells both in the frame header and the cell section")
	}
	if req.Rows <= 0 || req.Cols <= 0 || int64(req.Rows)*int64(req.Cols) != int64(len(flat)) {
		wire.PutCells(flat)
		return nil, nil, fmt.Errorf("frame carries %d cells for a %dx%d request", len(flat), req.Rows, req.Cols)
	}
	cells := make([][]int64, req.Rows)
	for i := range cells {
		cells[i] = flat[i*req.Cols : (i+1)*req.Cols]
	}
	req.Workload.Cells = cells
	return req, func() { wire.PutCells(flat) }, nil
}

// writeSolveResponse renders one successful solve under the negotiated
// codec. flat is the row-major result table (may outlive the call when
// it is a cache entry's payload — the writers only read it); cells are
// included only when the request asked and the table is under the
// response cap. Write failures after the status line can only be logged
// and the response aborted — the client is gone or the connection is
// broken, and a half-written body must not be "repaired" with more
// writes.
func (s *Server) writeSolveResponse(w http.ResponseWriter, neg negotiation, resp *api.SolveResponse, flat []int64, includeCells bool) {
	w.Header().Set(api.SolveIDHeader, fmt.Sprint(resp.ID))
	if neg.binaryResponse {
		s.wireStats.binaryResponses.Add(1)
		w.Header().Set("Content-Type", wire.MediaType)
		enc := wire.NewEncoder(w)
		if includeCells && len(flat) > wire.ChunkCells {
			if f, ok := w.(http.Flusher); ok {
				enc.SetFlush(f.Flush)
			}
		}
		// The frame header is the response document minus the cell
		// payload; cells travel in the chunked cell section.
		hdr := *resp
		hdr.Cells = nil
		err := enc.Header(hdr)
		if err == nil && includeCells {
			err = enc.Cells(flat)
		}
		if err != nil {
			// A failed or half-written frame must not be capped with an
			// end marker + trailer — the client would read the stray bytes
			// as a bogus frame instead of a truncated one.
			enc.Abort()
			s.logf("solve %d: writing binary response: %v", resp.ID, err)
			return
		}
		if err := enc.Close(); err != nil {
			s.logf("solve %d: writing binary response: %v", resp.ID, err)
		}
		return
	}
	s.wireStats.jsonResponses.Add(1)
	if includeCells {
		// Row headers over the flat payload: one allocation instead of
		// rows+1 copies — json.Encoder reads them synchronously, so
		// aliasing the (immutable) result is safe.
		rows := make([][]int64, resp.Rows)
		for i := range rows {
			rows[i] = flat[i*resp.Cols : (i+1)*resp.Cols]
		}
		resp.Cells = rows
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.logf("solve %d: writing response: %v", resp.ID, err)
	}
}
