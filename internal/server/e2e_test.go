// End-to-end differential suite for the network boundary: lddpd's
// handler stack runs in-process behind httptest, the public client
// drives it, and every returned table must match the sequential oracle
// byte for byte — the wire-level extension of the executor conformance
// suite in internal/core/conformance_test.go, sharing its adversarial
// instance family (MixProblem) and shape matrix.
package server_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
	"repro/lddp"
	"repro/lddp/client"
)

// e2eShapes mirrors the conformance suite's adversarial dimensions:
// degenerate rows and columns, the empty-front publish boundary
// ({101,1}), extreme aspect ratios, primes, and a square control.
var e2eShapes = [][2]int{
	{1, 1},
	{1, 33},
	{33, 1},
	{101, 1},
	{3, 101},
	{101, 3},
	{31, 37},
	{48, 48},
}

// newTestService boots a full service stack: Server, HTTP listener, and
// client with retries disabled (a differential test must see the first
// answer, not a retried one). Extra client options (e.g. WithCodec) are
// passed through.
func newTestService(t *testing.T, cfg server.Config, opts ...client.Option) (*server.Server, *httptest.Server, *client.Client) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	c := newCodecClient(t, ts, append([]client.Option{}, opts...)...)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, c
}

// newCodecClient attaches one more client (e.g. a binary-codec one) to
// an already-running test service.
func newCodecClient(t *testing.T, ts *httptest.Server, opts ...client.Option) *client.Client {
	t.Helper()
	c, err := client.New(ts.URL, append([]client.Option{client.WithRetry(client.RetryPolicy{MaxAttempts: 1})}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// e2eCodecs enumerates the wire encodings the differential matrix runs
// under; order matters where a shared service's cache is warm for the
// second codec (turning that pass into a cached-replay differential).
func e2eCodecs(t *testing.T, ts *httptest.Server) []struct {
	name string
	c    *client.Client
} {
	t.Helper()
	return []struct {
		name string
		c    *client.Client
	}{
		{"json", newCodecClient(t, ts)},
		{"binary", newCodecClient(t, ts, client.WithCodec(client.CodecBinary))},
	}
}

// reportMismatch renders a reproducible failure: the instance
// coordinates plus the first differing cell, like the conformance
// suite's helper.
func reportMismatch(t *testing.T, what string, seed int64, m lddp.DepMask, rows, cols int, want *lddp.Grid[int64], got [][]int64) {
	t.Helper()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if want.At(i, j) != got[i][j] {
				t.Errorf("%s: mask=%s shape=%dx%d seed=%d: first mismatch at (%d,%d): got %d, want %d",
					what, m, rows, cols, seed, i, j, got[i][j], want.At(i, j))
				return
			}
		}
	}
	t.Errorf("%s: mask=%s shape=%dx%d seed=%d: grids differ but no cell mismatch (dimension mismatch?)",
		what, m, rows, cols, seed)
}

// checkDifferential runs one request through the wire and demands exact
// equality (cells and digest) against the sequential oracle of the
// identical server-side instance.
func checkDifferential(t *testing.T, c *client.Client, req *client.SolveRequest, seed int64, m lddp.DepMask) {
	t.Helper()
	req.ReturnCells = true
	resp, err := c.Solve(context.Background(), req)
	if err != nil {
		t.Errorf("solve: mask=%s shape=%dx%d seed=%d: %v", m, req.Rows, req.Cols, seed, err)
		return
	}
	if resp.ID <= 0 {
		t.Errorf("mask=%s shape=%dx%d: solve ID %d not assigned", m, req.Rows, req.Cols, resp.ID)
	}
	oracle, err := core.Solve(mustBuild(t, req))
	if err != nil {
		t.Fatalf("oracle: mask=%s shape=%dx%d: %v", m, req.Rows, req.Cols, err)
	}
	if want := server.DigestGrid(oracle); resp.Digest != want {
		t.Errorf("digest: mask=%s shape=%dx%d seed=%d: got %s, want %s", m, req.Rows, req.Cols, seed, resp.Digest, want)
	}
	if len(resp.Cells) != req.Rows {
		t.Errorf("mask=%s shape=%dx%d: response has %d rows, want %d", m, req.Rows, req.Cols, len(resp.Cells), req.Rows)
		return
	}
	for i := range resp.Cells {
		if len(resp.Cells[i]) != req.Cols {
			t.Errorf("mask=%s shape=%dx%d: response row %d has %d cols, want %d",
				m, req.Rows, req.Cols, i, len(resp.Cells[i]), req.Cols)
			return
		}
	}
	for i := 0; i < req.Rows; i++ {
		for j := 0; j < req.Cols; j++ {
			if oracle.At(i, j) != resp.Cells[i][j] {
				reportMismatch(t, "e2e", seed, m, req.Rows, req.Cols, oracle, resp.Cells)
				return
			}
		}
	}
}

// mustBuild rebuilds the server-side instance locally for the oracle.
func mustBuild(t *testing.T, req *client.SolveRequest) *lddp.Problem[int64] {
	t.Helper()
	p, err := server.BuildProblem(req)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestE2EDifferentialAllMasks is the full wire-boundary matrix: all 15
// dependency masks x the adversarial shapes, "mix" workload, exact
// equality against the sequential oracle — run under both codecs
// against one shared service, so the JSON pass populates the result
// cache and the binary pass doubles as a cached-replay differential.
func TestE2EDifferentialAllMasks(t *testing.T) {
	srv, ts, _ := newTestService(t, server.Config{Workers: 4, Chunk: 8})
	const seed = int64(0x5eed_1dd9)
	for _, codec := range e2eCodecs(t, ts) {
		t.Run(codec.name, func(t *testing.T) {
			for _, m := range lddp.AllDepMasks() {
				for _, d := range e2eShapes {
					req := &client.SolveRequest{
						Rows: d[0], Cols: d[1],
						Mask:     m.String(),
						Workload: client.WorkloadSpec{Kind: client.KindMix, Seed: seed},
						Chunk:    8,
					}
					checkDifferential(t, codec.c, req, seed, m)
				}
			}
		})
	}
	// The second pass repeated the first's requests byte for byte: the
	// whole matrix must have replayed from cache, and the differential
	// above already proved the replays exact.
	if stats := srv.CacheStats(); stats.Hits < int64(len(lddp.AllDepMasks())*len(e2eShapes)) {
		t.Errorf("cache hits = %d across the repeated matrix, want at least %d",
			stats.Hits, len(lddp.AllDepMasks())*len(e2eShapes))
	}
}

// TestE2EDifferentialAsyncStrategy runs the wire boundary with the
// "async" strategy knob: every mask on a couple of adversarial shapes
// must come back digest- and cell-identical to the sequential oracle
// when solved by the barrier-free dependency-counter executor.
func TestE2EDifferentialAsyncStrategy(t *testing.T) {
	_, _, c := newTestService(t, server.Config{Workers: 4})
	const seed = int64(0xa51c)
	for _, m := range lddp.AllDepMasks() {
		for _, d := range [][2]int{{1, 33}, {31, 37}, {101, 3}} {
			req := &client.SolveRequest{
				Rows: d[0], Cols: d[1],
				Mask:     m.String(),
				Strategy: "async",
				Workload: client.WorkloadSpec{Kind: client.KindMix, Seed: seed},
			}
			checkDifferential(t, c, req, seed, m)
		}
	}
}

// TestE2EDifferentialSeedSweep re-runs a reduced matrix over several
// seeds so the boundary is not blind to a value-dependent bug one seed
// happens to miss.
func TestE2EDifferentialSeedSweep(t *testing.T) {
	_, _, c := newTestService(t, server.Config{Workers: 4, Chunk: 8})
	masks := []lddp.DepMask{
		lddp.DepW | lddp.DepN,
		lddp.DepNW,
		lddp.DepW | lddp.DepNE,
		lddp.DepW | lddp.DepNW | lddp.DepN | lddp.DepNE,
	}
	for seed := int64(1); seed <= 3; seed++ {
		for _, m := range masks {
			req := &client.SolveRequest{
				Rows: 29, Cols: 43,
				Mask:     m.String(),
				Workload: client.WorkloadSpec{Kind: client.KindMix, Seed: seed},
				Chunk:    8,
			}
			checkDifferential(t, c, req, seed, m)
		}
	}
}

// TestE2EDifferentialOtherKinds covers the remaining workload kinds
// through the same oracle: the load kernel, the inline-cells and
// generated cost grids, and the alignment recurrence.
func TestE2EDifferentialOtherKinds(t *testing.T) {
	for _, codecName := range []string{"json", "binary"} {
		t.Run(codecName, func(t *testing.T) {
			// A fresh (cache-disabled) service per codec: every kind must
			// exercise the cold solve path under each encoding — the
			// inline-cost case in particular sends real payload through the
			// binary request frame's cell section.
			opts := []client.Option{}
			if codecName == "binary" {
				opts = append(opts, client.WithCodec(client.CodecBinary))
			}
			_, _, c := newTestService(t, server.Config{Workers: 4, Chunk: 8, CacheBytes: -1}, opts...)
			t.Run("serve", func(t *testing.T) {
				for _, m := range []lddp.DepMask{lddp.DepW | lddp.DepN, lddp.DepNE} {
					req := &client.SolveRequest{
						Rows: 31, Cols: 37, Mask: m.String(),
						Workload: client.WorkloadSpec{Kind: client.KindServe},
					}
					checkDifferential(t, c, req, 0, m)
				}
			})
			t.Run("cost-inline", func(t *testing.T) {
				m := lddp.DepW | lddp.DepNW | lddp.DepN
				cells := server.GeneratedCostCells(7, 19, 23)
				req := &client.SolveRequest{
					Rows: 19, Cols: 23, Mask: m.String(),
					Workload: client.WorkloadSpec{Kind: client.KindCost, Cells: cells},
				}
				checkDifferential(t, c, req, 7, m)
			})
			t.Run("cost-generated", func(t *testing.T) {
				m := lddp.DepN | lddp.DepNE
				req := &client.SolveRequest{
					Rows: 23, Cols: 19, Mask: m.String(),
					Workload: client.WorkloadSpec{Kind: client.KindCost, Seed: 11},
				}
				checkDifferential(t, c, req, 11, m)
			})
			t.Run("align", func(t *testing.T) {
				req := &client.SolveRequest{
					Rows: 40, Cols: 40,
					Workload: client.WorkloadSpec{Kind: client.KindAlign, Seed: 3},
				}
				checkDifferential(t, c, req, 3, server.AlignMask)
			})
		})
	}
}

// TestE2ECacheReplayDifferential: a cached replay must be
// indistinguishable from the cold solve — same digest, byte-identical
// cells — under every codec pairing of cold and warm request.
func TestE2ECacheReplayDifferential(t *testing.T) {
	_, ts, _ := newTestService(t, server.Config{Workers: 4, Chunk: 8})
	codecs := e2eCodecs(t, ts)
	m := lddp.DepW | lddp.DepNW | lddp.DepNE
	seed := int64(99)
	var cold *client.SolveResponse
	for i, codec := range codecs {
		req := &client.SolveRequest{
			Rows: 31, Cols: 37, Mask: m.String(), ReturnCells: true,
			Workload: client.WorkloadSpec{Kind: client.KindMix, Seed: seed},
			Chunk:    8,
		}
		resp, err := codec.c.Solve(context.Background(), req)
		if err != nil {
			t.Fatalf("%s solve: %v", codec.name, err)
		}
		if i == 0 {
			if resp.Cached {
				t.Fatalf("first solve claims to be cached")
			}
			cold = resp
			continue
		}
		if !resp.Cached {
			t.Errorf("%s replay not served from cache", codec.name)
		}
		if resp.Digest != cold.Digest || resp.ID != cold.ID {
			t.Errorf("%s replay: digest/ID %s/%d, want %s/%d", codec.name, resp.Digest, resp.ID, cold.Digest, cold.ID)
		}
		for r := range cold.Cells {
			for j := range cold.Cells[r] {
				if cold.Cells[r][j] != resp.Cells[r][j] {
					t.Fatalf("%s replay cell (%d,%d) = %d, want %d", codec.name, r, j, resp.Cells[r][j], cold.Cells[r][j])
				}
			}
		}
	}
}
