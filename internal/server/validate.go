package server

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sched"
	"repro/lddp/api"
)

// Request validation ceilings. They are service-protection bounds, not
// tuning knobs: a request past them is refused with 400/413, never
// clamped, so the caller learns about the mistake instead of silently
// getting a different solve.
const (
	// DefaultMaxCells caps Rows*Cols per request (a 2048x2048 table).
	DefaultMaxCells = 1 << 22
	// DefaultMaxInlineCells caps the inline cost payload (a 256x256
	// table) — inline cells travel as JSON, so they must stay small.
	DefaultMaxInlineCells = 1 << 16
	// DefaultMaxResponseCells caps the cells echoed back for
	// ReturnCells requests; larger tables return the digest alone.
	DefaultMaxResponseCells = 1 << 16
	// DefaultMaxBodyBytes caps the request body read from the wire.
	DefaultMaxBodyBytes = 16 << 20
	// MaxDeadlineMS caps the per-request deadline (10 minutes); beyond
	// it a deadline is a configuration mistake.
	MaxDeadlineMS = 10 * 60 * 1000
)

// ParseSolveRequest decodes one POST /v1/solve body. Unknown fields are
// rejected — a misspelled knob silently ignored would run the wrong
// solve. The returned error is always a client error (400 material).
func ParseSolveRequest(r io.Reader) (*api.SolveRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req api.SolveRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding request: %w", err)
	}
	// A second document in the body is a framing error, not trailing
	// noise to ignore.
	if dec.More() {
		return nil, fmt.Errorf("request body holds more than one JSON document")
	}
	return &req, nil
}

// ValidateRequest checks a decoded request against the server's caps.
// A nil error guarantees BuildProblem accepts the request (up to the
// mask/kind cross-checks BuildProblem itself reports).
func (s *Server) ValidateRequest(req *api.SolveRequest) error {
	if req.Rows <= 0 || req.Cols <= 0 {
		return fmt.Errorf("table size %dx%d invalid: rows and cols must be positive", req.Rows, req.Cols)
	}
	cells := int64(req.Rows) * int64(req.Cols)
	if cells > s.cfg.MaxCells {
		return fmt.Errorf("table size %dx%d exceeds the per-request cap of %d cells", req.Rows, req.Cols, s.cfg.MaxCells)
	}
	switch req.Strategy {
	case "", "auto", "parallel", "async":
	default:
		return fmt.Errorf("unknown strategy %q (want auto, parallel or async)", req.Strategy)
	}
	switch req.Workload.Kind {
	case "", api.KindMix, api.KindServe, api.KindCost, api.KindAlign:
	default:
		return fmt.Errorf("unknown workload kind %q (want mix, serve, cost or align)", req.Workload.Kind)
	}
	if req.Workload.Cells != nil {
		if req.Workload.Kind != api.KindCost {
			return fmt.Errorf("inline cells are only valid with the cost workload kind")
		}
		if cells > int64(s.cfg.MaxInlineCells) {
			return fmt.Errorf("inline cost payload %dx%d exceeds the cap of %d cells", req.Rows, req.Cols, s.cfg.MaxInlineCells)
		}
	}
	if req.Chunk < 0 || req.Chunk > sched.MaxChunk {
		return fmt.Errorf("chunk %d outside [0, %d]", req.Chunk, sched.MaxChunk)
	}
	if req.DeadlineMS < 0 || req.DeadlineMS > MaxDeadlineMS {
		return fmt.Errorf("deadline_ms %d outside [0, %d]", req.DeadlineMS, MaxDeadlineMS)
	}
	return nil
}
