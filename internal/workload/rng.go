// Package workload provides deterministic input generators for the LDDP
// case studies and experiments: random strings, grayscale images, cost
// grids, and time series. All generators are seeded and reproducible —
// repeated runs of any experiment consume byte-identical inputs.
package workload

// RNG is a splitmix64 pseudo-random generator. It is tiny, fast, has a
// one-word state, and — unlike math/rand — its output sequence is fixed by
// this package, so experiment inputs can never drift with a toolchain
// upgrade.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
