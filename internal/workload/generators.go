package workload

// DNAAlphabet is the four-letter alphabet used for sequence-alignment
// workloads.
const DNAAlphabet = "ACGT"

// ASCIIAlphabet is a 26-letter alphabet for edit-distance workloads.
const ASCIIAlphabet = "abcdefghijklmnopqrstuvwxyz"

// RandomString returns a pseudo-random string of length n over the given
// alphabet.
func RandomString(seed uint64, n int, alphabet string) string {
	if n < 0 {
		panic("workload: negative string length")
	}
	r := NewRNG(seed)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(b)
}

// SimilarStrings returns two strings of length n over the alphabet where
// the second is the first with roughly mutationRate of its positions
// changed — a realistic alignment workload (near-identical sequences),
// unlike two independent random strings.
func SimilarStrings(seed uint64, n int, alphabet string, mutationRate float64) (string, string) {
	a := RandomString(seed, n, alphabet)
	r := NewRNG(seed ^ 0xdeadbeefcafef00d)
	b := []byte(a)
	for i := range b {
		if r.Float64() < mutationRate {
			b[i] = alphabet[r.Intn(len(alphabet))]
		}
	}
	return a, string(b)
}

// GrayImage returns a rows x cols 8-bit grayscale image with smooth
// low-frequency structure plus noise — the kind of content error-diffusion
// dithering is used on. Values are row-major.
func GrayImage(seed uint64, rows, cols int) [][]uint8 {
	r := NewRNG(seed)
	img := make([][]uint8, rows)
	for i := range img {
		img[i] = make([]uint8, cols)
		for j := range img[i] {
			// A diagonal gradient with +-24 levels of noise.
			base := (i*255/(rows+1) + j*255/(cols+1)) / 2
			noise := r.Intn(49) - 24
			v := base + noise
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			img[i][j] = uint8(v)
		}
	}
	return img
}

// CostGrid returns a rows x cols grid of non-negative integer costs in
// [1, maxCost] for shortest-path workloads like the checkerboard problem.
func CostGrid(seed uint64, rows, cols, maxCost int) [][]int32 {
	if maxCost < 1 {
		panic("workload: maxCost must be >= 1")
	}
	r := NewRNG(seed)
	g := make([][]int32, rows)
	for i := range g {
		g[i] = make([]int32, cols)
		for j := range g[i] {
			g[i][j] = int32(1 + r.Intn(maxCost))
		}
	}
	return g
}

// TimeSeries returns a length-n series that random-walks within [lo, hi],
// a realistic dynamic-time-warping workload.
func TimeSeries(seed uint64, n int, lo, hi float64) []float64 {
	r := NewRNG(seed)
	s := make([]float64, n)
	v := (lo + hi) / 2
	span := (hi - lo) / 20
	for i := range s {
		v += (r.Float64() - 0.5) * span
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		s[i] = v
	}
	return s
}

// EnergyGrid returns a rows x cols grid of pixel "energies" for the
// seam-carving workload: mostly low values with occasional high-energy
// edges, mimicking image gradients.
func EnergyGrid(seed uint64, rows, cols int) [][]int32 {
	r := NewRNG(seed)
	g := make([][]int32, rows)
	for i := range g {
		g[i] = make([]int32, cols)
		for j := range g[i] {
			v := int32(r.Intn(32))
			if r.Intn(16) == 0 {
				v += int32(128 + r.Intn(128)) // an "edge"
			}
			g[i][j] = v
		}
	}
	return g
}
