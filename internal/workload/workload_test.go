package workload

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v", v)
		}
	}
}

func TestRandomString(t *testing.T) {
	s := RandomString(1, 500, DNAAlphabet)
	if len(s) != 500 {
		t.Fatalf("len = %d", len(s))
	}
	counts := map[rune]int{}
	for _, c := range s {
		counts[c]++
	}
	for _, c := range DNAAlphabet {
		if counts[c] == 0 {
			t.Errorf("letter %c never appears in 500 draws", c)
		}
	}
	if s != RandomString(1, 500, DNAAlphabet) {
		t.Error("not deterministic")
	}
	if s == RandomString(2, 500, DNAAlphabet) {
		t.Error("seed has no effect")
	}
}

func TestSimilarStrings(t *testing.T) {
	a, b := SimilarStrings(5, 2000, ASCIIAlphabet, 0.1)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	// ~10% mutation rate, but a mutation can re-draw the same letter;
	// expect roughly 0.1 * 25/26 ~ 9.6% differences.
	if diff < 100 || diff > 320 {
		t.Errorf("differences = %d of 2000, want near 190", diff)
	}
}

func TestGrayImageShapeAndRange(t *testing.T) {
	img := GrayImage(3, 20, 30)
	if len(img) != 20 || len(img[0]) != 30 {
		t.Fatal("shape wrong")
	}
	// The gradient should make the bottom-right brighter than the top-left
	// on average.
	var tl, br int
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			tl += int(img[i][j])
			br += int(img[15+i][25+j])
		}
	}
	if br <= tl {
		t.Errorf("gradient missing: tl=%d br=%d", tl, br)
	}
}

func TestCostGridRange(t *testing.T) {
	g := CostGrid(11, 10, 10, 9)
	for i := range g {
		for j := range g[i] {
			if g[i][j] < 1 || g[i][j] > 9 {
				t.Fatalf("cost %d out of [1,9]", g[i][j])
			}
		}
	}
}

func TestTimeSeriesBounds(t *testing.T) {
	s := TimeSeries(13, 5000, -2, 2)
	if len(s) != 5000 {
		t.Fatal("length wrong")
	}
	for i, v := range s {
		if v < -2 || v > 2 {
			t.Fatalf("s[%d] = %v out of bounds", i, v)
		}
	}
}

func TestEnergyGridNonNegative(t *testing.T) {
	g := EnergyGrid(17, 30, 30)
	edges := 0
	for i := range g {
		for j := range g[i] {
			if g[i][j] < 0 {
				t.Fatalf("negative energy")
			}
			if g[i][j] >= 128 {
				edges++
			}
		}
	}
	if edges == 0 {
		t.Error("no high-energy edges generated")
	}
}

// Property: generators are pure functions of their seed.
func TestGeneratorDeterminismProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := SimilarStrings(seed, 64, DNAAlphabet, 0.2)
		a2, b2 := SimilarStrings(seed, 64, DNAAlphabet, 0.2)
		if a != a2 || b != b2 {
			return false
		}
		g1 := CostGrid(seed, 8, 8, 10)
		g2 := CostGrid(seed, 8, 8, 10)
		for i := range g1 {
			for j := range g1[i] {
				if g1[i][j] != g2[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
