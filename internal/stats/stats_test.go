package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{4, 1, 3, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("N/Min/Max = %d/%v/%v", s.N, s.Min, s.Max)
	}
	if s.Mean != 3 || s.Median != 3 {
		t.Errorf("Mean/Median = %v/%v", s.Mean, s.Median)
	}
	if !approx(s.StdDev, math.Sqrt(2), 1e-12) {
		t.Errorf("StdDev = %v, want sqrt(2)", s.StdDev)
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Errorf("quartiles = %v/%v", s.P25, s.P75)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil || s.Median != 7 || s.P25 != 7 || s.StdDev != 0 {
		t.Errorf("singleton summary = %+v, %v", s, err)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("expected error")
	}
}

func TestFitPowerExact(t *testing.T) {
	// y = 3 x^2 exactly.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	f, err := FitPower(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(f.Alpha, 2, 1e-9) || !approx(f.C, 3, 1e-9) || !approx(f.R2, 1, 1e-12) {
		t.Errorf("fit = %+v, want alpha=2 C=3 R2=1", f)
	}
}

func TestFitPowerNoisy(t *testing.T) {
	xs := []float64{100, 200, 400, 800}
	ys := []float64{1.05e4, 4.1e4, 1.58e5, 6.5e5} // ~ x^2
	f, err := FitPower(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if f.Alpha < 1.9 || f.Alpha > 2.1 {
		t.Errorf("alpha = %v, want ~2", f.Alpha)
	}
	if f.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", f.R2)
	}
}

func TestFitPowerErrors(t *testing.T) {
	if _, err := FitPower([]float64{1}, []float64{1}); err == nil {
		t.Error("one point should error")
	}
	if _, err := FitPower([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := FitPower([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Error("negative x should error")
	}
	if _, err := FitPower([]float64{1, 2}, []float64{0, 2}); err == nil {
		t.Error("zero y should error")
	}
}

// Property: fitting data generated from a power law recovers its exponent.
func TestFitPowerRecoveryProperty(t *testing.T) {
	f := func(alphaRaw, cRaw uint8) bool {
		alpha := 0.5 + float64(alphaRaw%30)/10 // 0.5 .. 3.4
		c := 0.1 + float64(cRaw%50)/10         // 0.1 .. 5.0
		xs := []float64{2, 5, 11, 23, 47, 97}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = c * math.Pow(x, alpha)
		}
		fit, err := FitPower(xs, ys)
		if err != nil {
			return false
		}
		return approx(fit.Alpha, alpha, 1e-9) && approx(fit.C, c, 1e-6*c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSpeedup(t *testing.T) {
	s, err := Speedup([]float64{4, 9}, []float64{2, 3})
	if err != nil || s[0] != 2 || s[1] != 3 {
		t.Errorf("speedup = %v, %v", s, err)
	}
	if _, err := Speedup([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Speedup([]float64{1}, []float64{0}); err == nil {
		t.Error("zero divisor should error")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4, 16})
	if err != nil || !approx(g, 4, 1e-12) {
		t.Errorf("geomean = %v, %v", g, err)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative should error")
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	// All x equal: slope undefined, fall back to mean intercept.
	slope, intercept, r2 := linearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if slope != 0 || intercept != 2 || r2 != 0 {
		t.Errorf("degenerate fit = %v/%v/%v", slope, intercept, r2)
	}
	// Perfectly flat y: R2 defined as 1.
	_, _, r2 = linearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if r2 != 1 {
		t.Errorf("flat-y R2 = %v, want 1", r2)
	}
}
