// Package stats provides the small numerical toolkit the experiment
// analyses need: summary statistics and least-squares power-law fits for
// scaling analysis of measured series.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N        int
	Min, Max float64
	Mean     float64
	Median   float64
	StdDev   float64
	P25, P75 float64
}

// Summarize computes order statistics; it returns an error on an empty
// sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, errors.New("stats: empty sample")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	var sum, sumSq float64
	for _, v := range s {
		sum += v
		sumSq += v * v
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   mean,
		Median: quantileSorted(s, 0.5),
		StdDev: math.Sqrt(variance),
		P25:    quantileSorted(s, 0.25),
		P75:    quantileSorted(s, 0.75),
	}, nil
}

// quantileSorted interpolates the q-quantile of a sorted sample.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// PowerFit is the least-squares fit of y = C * x^Alpha.
type PowerFit struct {
	C     float64
	Alpha float64
	// R2 is the coefficient of determination in log-log space.
	R2 float64
}

// FitPower fits y = C * x^alpha by linear regression in log-log space.
// All inputs must be positive; at least two points are required.
func FitPower(xs, ys []float64) (PowerFit, error) {
	if len(xs) != len(ys) {
		return PowerFit{}, errors.New("stats: mismatched series lengths")
	}
	if len(xs) < 2 {
		return PowerFit{}, errors.New("stats: need at least two points")
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return PowerFit{}, errors.New("stats: power fit requires positive values")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	slope, intercept, r2 := linearFit(lx, ly)
	return PowerFit{C: math.Exp(intercept), Alpha: slope, R2: r2}, nil
}

// linearFit returns the least-squares slope, intercept and R^2 of y on x.
func linearFit(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return slope, intercept, 1
	}
	var ssRes float64
	for i := range xs {
		d := ys[i] - (slope*xs[i] + intercept)
		ssRes += d * d
	}
	r2 = 1 - ssRes/ssTot
	return slope, intercept, r2
}

// Speedup returns a/b elementwise; series must have equal lengths.
func Speedup(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, errors.New("stats: mismatched series lengths")
	}
	out := make([]float64, len(a))
	for i := range a {
		if b[i] == 0 {
			return nil, errors.New("stats: division by zero")
		}
		out[i] = a[i] / b[i]
	}
	return out, nil
}

// GeoMean returns the geometric mean of a positive sample.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: empty sample")
	}
	var sum float64
	for _, v := range xs {
		if v <= 0 {
			return 0, errors.New("stats: geometric mean requires positive values")
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(xs))), nil
}
